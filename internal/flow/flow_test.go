package flow

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/satable"
	"repro/internal/workload"
)

// bgc is the background context the tests run non-cancellation
// pipelines under.
var bgc = context.Background()

// testConfig keeps unit tests fast: 4-bit datapath, 200 vectors.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Width = 4
	cfg.Vectors = 200
	cfg.Table = satable.New(4, satable.EstimatorGlitch)
	return cfg
}

func smallSession() *Session {
	se := NewSession(testConfig())
	pr, _ := workload.ByName("pr")
	wang, _ := workload.ByName("wang")
	se.Benchmarks = []workload.Profile{pr, wang}
	return se
}

func TestRunProducesCompleteResult(t *testing.T) {
	p, _ := workload.ByName("pr")
	r, err := Run(p, BinderHLPower05, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs <= 0 || r.Depth <= 0 {
		t.Fatalf("mapping degenerate: LUTs=%d depth=%d", r.LUTs, r.Depth)
	}
	if r.Counts.Cycles != 200 {
		t.Fatalf("cycles = %d", r.Counts.Cycles)
	}
	if r.Power.DynamicPowerMW <= 0 {
		t.Fatal("no power measured")
	}
	if r.NumRegs <= 0 || r.Schedule.Len <= 0 {
		t.Fatal("front-end results missing")
	}
	if r.FUMux.NumFUs != p.RC.Add+p.RC.Mult {
		t.Fatalf("FU count %d, want %d", r.FUMux.NumFUs, p.RC.Add+p.RC.Mult)
	}
}

func TestRunGraphOnKernel(t *testing.T) {
	g := workload.FIR(6)
	r, err := RunGraph(g, "fir6", cdfg.ResourceConstraint{Add: 2, Mult: 2}, BinderLOPASS, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Bench != "fir6" || r.LUTs == 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
}

func TestSessionCaches(t *testing.T) {
	se := smallSession()
	p := se.Benchmarks[0]
	r1, err := se.Run(bgc, p, BinderLOPASS)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := se.Run(bgc, p, BinderLOPASS)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("session did not cache")
	}
}

func TestTable1Renders(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chem", "wang", "171", "176"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTablesAndFigureRender(t *testing.T) {
	se := smallSession()
	var sb strings.Builder
	if err := Table2(bgc, &sb, se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pr") || !strings.Contains(sb.String(), "Cycle") {
		t.Fatalf("Table 2 malformed:\n%s", sb.String())
	}
	sb.Reset()
	if err := Table3(bgc, &sb, se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Average") {
		t.Fatalf("Table 3 missing average row:\n%s", sb.String())
	}
	sb.Reset()
	if err := Table4(bgc, &sb, se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#muxes") {
		t.Fatalf("Table 4 malformed:\n%s", sb.String())
	}
	sb.Reset()
	if err := Figure3(bgc, &sb, se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "LOPASS") || !strings.Contains(sb.String(), "a=0.5") {
		t.Fatalf("Figure 3 malformed:\n%s", sb.String())
	}
}

// TestHeadlineShapeOnSmallSuite is the reduced-scale version of the
// paper's headline claim: HLPower (alpha=0.5) should not lose to LOPASS
// on measured toggle counts and should improve mux balance, on the two
// DCT benchmarks.
func TestHeadlineShapeOnSmallSuite(t *testing.T) {
	se := smallSession()
	t4, err := Table4Data(bgc, se)
	if err != nil {
		t.Fatal(err)
	}
	var ml, m05 float64
	for _, r := range t4 {
		ml += r.MeanL
		m05 += r.Mean05
	}
	if m05 > ml {
		t.Fatalf("muxDiff mean should improve: LOPASS %.2f vs a=0.5 %.2f", ml, m05)
	}
	f3, err := Figure3Data(bgc, se)
	if err != nil {
		t.Fatal(err)
	}
	var sumL, sumH float64
	for _, r := range f3 {
		sumL += r.RateL
		sumH += r.Rate05
	}
	if sumH > sumL*1.05 {
		t.Fatalf("toggle rate regressed: LOPASS %.2f vs HLPower %.2f", sumL, sumH)
	}
}

package flow

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestBindStatsPopulated: a session exposes one engine report per
// HLPower bind, under the deterministic algorithm label, with
// per-iteration stats summing to the totals; baseline binds are
// omitted.
func TestBindStatsPopulated(t *testing.T) {
	se := smallSession()
	p := se.Benchmarks[0]
	if _, err := se.Run(bgc, p, BinderLOPASS); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Run(bgc, p, BinderHLPower05); err != nil {
		t.Fatal(err)
	}
	stats := se.BindStats()
	if len(stats) != 1 {
		t.Fatalf("%d bind stats, want 1 (LOPASS carries no engine report)", len(stats))
	}
	st := stats[0]
	if st.Bench != p.Name || st.Algo != "hlpower alpha=0.5" {
		t.Fatalf("provenance = %s/%s, want %s/hlpower alpha=0.5", st.Bench, st.Algo, p.Name)
	}
	rep := st.Report
	if rep.Iterations == 0 || rep.EdgesScored == 0 || rep.WeightShapes == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if len(rep.Iters) != rep.Iterations {
		t.Fatalf("%d iteration stats for %d iterations", len(rep.Iters), rep.Iterations)
	}
	scored, reused := 0, 0
	for _, it := range rep.Iters {
		scored += it.EdgesScored
		reused += it.EdgesReused
	}
	if scored != rep.EdgesScored || reused != rep.EdgesReused {
		t.Fatalf("iteration sums (%d/%d) != totals (%d/%d)", scored, reused, rep.EdgesScored, rep.EdgesReused)
	}
}

// TestBindIterSpansRecorded: an HLPower run's trace carries one
// bind.iter sub-span per merge round, with the scoring counters as
// attrs; a cache-served binding does not re-emit them.
func TestBindIterSpansRecorded(t *testing.T) {
	se := smallSession()
	p := se.Benchmarks[0]
	r, err := se.Run(bgc, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	for _, sp := range r.StageTrace {
		if sp.Stage != StageBindIter {
			continue
		}
		for _, k := range []string{"iter", "edges_scored", "edges_reused", "merges", "invalidation", "score_ns", "solve_ns"} {
			if _, ok := sp.Attrs[k]; !ok {
				t.Fatalf("bind.iter span missing attr %q: %v", k, sp.Attrs)
			}
		}
		iters = append(iters, int(sp.Attrs["iter"]))
	}
	stats := se.BindStats()
	if len(stats) != 1 || len(iters) != stats[0].Report.Iterations {
		t.Fatalf("%d bind.iter spans for %d engine iterations", len(iters), stats[0].Report.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("iteration spans out of order: %v", iters)
		}
	}
	before := len(se.TraceSpans())
	// Same spec through a derived session: the bind is cache-served, so
	// no new bind.iter spans may appear.
	if _, err := se.Derive(se.Cfg).Run(bgc, p, BinderHLPower05); err != nil {
		t.Fatal(err)
	}
	extra := 0
	for _, sp := range se.TraceSpans()[before:] {
		if sp.Stage == StageBindIter {
			extra++
		}
	}
	if extra != 0 {
		t.Fatalf("cache-served bind re-emitted %d bind.iter spans", extra)
	}
}

// TestBindJobsInvariance is the non-semantic worker-count contract at
// the flow layer: BindJobs must not enter the bind cache key, and the
// measured results at -j style worker counts 1 and 8 must be
// identical.
func TestBindJobsInvariance(t *testing.T) {
	cfg1 := testConfig()
	cfg1.BindJobs = 1
	cfg8 := testConfig()
	cfg8.BindJobs = 8
	cfg8.Table = cfg1.Table // share SA characterizations across sessions
	if specForBinder(BinderHLPower05, cfg1).fp() != specForBinder(BinderHLPower05, cfg8).fp() {
		t.Fatal("BindJobs leaked into the bind-stage cache key")
	}
	p, _ := workload.ByName("pr")
	type projection struct {
		FUMux   any
		LUTs    int
		Depth   int
		EstSA   float64
		Dynamic float64
	}
	project := func(r *Result) projection {
		return projection{r.FUMux, r.LUTs, r.Depth, r.EstSA, r.Power.DynamicPowerMW}
	}
	r1, err := NewSession(cfg1).Run(bgc, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := NewSession(cfg8).Run(bgc, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(project(r1), project(r8)) {
		t.Fatalf("results diverge across BindJobs:\nj1: %+v\nj8: %+v", project(r1), project(r8))
	}
}

package flow

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/logic"
	"repro/internal/lopass"
	"repro/internal/mapper"
	"repro/internal/modsel"
	"repro/internal/pipeline"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runScheduledMonolithic is the pre-refactor single-function pipeline,
// kept verbatim as the behavioural reference: the staged pipeline must
// produce identical Results (TestStagedMatchesMonolithic). It
// deliberately runs the scalar sim.Simulator while the staged sim
// stage runs the word-parallel engine, so the equivalence sweep is
// also the full-flow proof that the two engines yield identical counts
// and power on every benchmark.
func runScheduledMonolithic(g *cdfg.Graph, name string, s *cdfg.Schedule, rc cdfg.ResourceConstraint, b Binder, cfg Config) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	if err := cdfg.ValidateSchedule(g, s, rc); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	swap := binding.RandomPortAssignment(g, cfg.PortSeed)
	rb, err := regbind.BindOpt(g, s, regbind.Options{Swap: swap})
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}

	var res *binding.Result
	var bindTime time.Duration
	if b.UseHLPower {
		opt := core.DefaultOptions(cfg.Table)
		opt.Alpha = b.Alpha
		if cfg.BetaAdd > 0 {
			opt.BetaAdd = cfg.BetaAdd
		}
		if cfg.BetaMult > 0 {
			opt.BetaMult = cfg.BetaMult
		}
		opt.MergesPerIteration = 1
		opt.Swap = swap
		r, rep, err := core.Bind(g, s, rb, rc, opt)
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
		}
		res, bindTime = r, rep.Runtime
	} else {
		r, rep, err := lopass.Bind(g, s, rb, rc, lopass.Options{Swap: swap, Table: cfg.BaselineTable})
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
		}
		res, bindTime = r, rep.Runtime
	}

	var arch *datapath.Arch
	if cfg.ModSel != nil {
		opt := *cfg.ModSel
		if opt.Width == 0 {
			opt.Width = cfg.Width
		}
		sel, err := modsel.NewSelector(opt).Select(g, rb, res)
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
		}
		adder, mult := sel.Arch()
		arch = &datapath.Arch{Adder: adder, Mult: mult}
	}
	d, err := datapath.ElaborateArch(g, s, rb, res, cfg.Width, arch)
	if err != nil {
		return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
	}
	toMap := d.Net
	if cfg.PreOptimize {
		toMap, _ = logic.Optimize(d.Net)
	}
	mapped, err := mapper.Map(toMap, cfg.MapOpt)
	if err != nil {
		return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
	}
	simr, err := sim.NewWithDelays(mapped.Mapped, cfg.Delay, cfg.DelaySeed)
	if err != nil {
		return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
	}
	counts := simr.RunRandom(cfg.Vectors, cfg.VectorSeed)

	return &Result{
		Bench:    name,
		Binder:   b,
		Schedule: s,
		NumRegs:  rb.NumRegs,
		BindTime: bindTime,
		FUMux:    binding.ComputeMuxStats(g, rb, res),
		DPMux:    d.Muxes,
		LUTs:     mapped.LUTs,
		Depth:    mapped.Depth,
		EstSA:    mapped.EstSA,
		Counts:   counts,
		Power:    cfg.Power.Analyze(mapped.Mapped, counts),
	}, nil
}

// TestStagedMatchesMonolithic sweeps the full benchmark suite through
// every binder twice — once through the session's stage graph (with all
// its cross-run artifact sharing) and once through the retained
// monolithic reference — and requires identical Results. This is the
// refactor's equivalence guarantee: caching and stage decomposition must
// not change a single measured number.
func TestStagedMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	cfg := testConfig()
	cfg.Vectors = 150
	cfg = cfg.Normalize()
	se := NewSession(cfg)
	se.Jobs = 4
	if err := se.RunAll(bgc); err != nil {
		t.Fatal(err)
	}
	for _, p := range se.Benchmarks {
		g := workload.Generate(p)
		s, err := workload.Schedule(p, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range AllBinders {
			staged, err := se.Run(bgc, p, b)
			if err != nil {
				t.Fatal(err)
			}
			mono, err := runScheduledMonolithic(g, p.Name, s, p.RC, b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(project(staged), project(mono)) {
				t.Errorf("%s/%s: staged result differs from monolithic:\nstaged: %+v\nmono:   %+v",
					p.Name, b.Name, project(staged), project(mono))
			}
		}
	}
}

// TestSimJobsInvariance runs the same benchmark in fresh sessions at
// several SimJobs settings and requires identical Counts and power:
// the worker count is a pure throughput knob, never a semantic one.
// It also pins SimJobs out of the sim cache key — a Derive'd session
// differing only in SimJobs must serve sim from cache.
func TestSimJobsInvariance(t *testing.T) {
	cfg := testConfig()
	cfg.Vectors = 100
	cfg = cfg.Normalize()
	pr, _ := workload.ByName("pr")

	var ref *Result
	for _, jobs := range []int{1, 3, 8} {
		c := cfg
		c.SimJobs = jobs
		se := NewSession(c)
		se.Benchmarks = []workload.Profile{pr}
		r, err := se.Run(bgc, pr, BinderHLPower05)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if r.Counts != ref.Counts {
			t.Errorf("SimJobs=%d: counts %+v, want %+v", jobs, r.Counts, ref.Counts)
		}
		if r.Power != ref.Power {
			t.Errorf("SimJobs=%d: power %+v, want %+v", jobs, r.Power, ref.Power)
		}
	}

	base := NewSession(cfg)
	base.Benchmarks = []workload.Profile{pr}
	if _, err := base.Run(bgc, pr, BinderHLPower05); err != nil {
		t.Fatal(err)
	}
	mut := cfg
	mut.SimJobs = 7
	se := base.Derive(mut)
	before := se.StageStats()
	if _, err := se.Run(bgc, pr, BinderHLPower05); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(before, se.StageStats())
	if got := d[StageSim]; got != (pipeline.Stats{Hits: 1}) {
		t.Errorf("SimJobs change: sim stage delta %+v, want a pure cache hit", got)
	}
}

// TestSimWideInvariance is the width analog of TestSimJobsInvariance:
// the simulator's lane-group width is a pure throughput knob, so fresh
// sessions at several SimWide settings must produce identical Counts
// and power, and a Derive'd session differing only in SimWide must
// serve sim from cache.
func TestSimWideInvariance(t *testing.T) {
	cfg := testConfig()
	cfg.Vectors = 100
	cfg = cfg.Normalize()
	pr, _ := workload.ByName("pr")

	var ref *Result
	for _, wide := range []int{1, 2, 8} {
		c := cfg
		c.SimWide = wide
		se := NewSession(c)
		se.Benchmarks = []workload.Profile{pr}
		r, err := se.Run(bgc, pr, BinderHLPower05)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if r.Counts != ref.Counts {
			t.Errorf("SimWide=%d: counts %+v, want %+v", wide, r.Counts, ref.Counts)
		}
		if r.Power != ref.Power {
			t.Errorf("SimWide=%d: power %+v, want %+v", wide, r.Power, ref.Power)
		}
	}

	base := NewSession(cfg)
	base.Benchmarks = []workload.Profile{pr}
	if _, err := base.Run(bgc, pr, BinderHLPower05); err != nil {
		t.Fatal(err)
	}
	mut := cfg
	mut.SimWide = 2
	se := base.Derive(mut)
	before := se.StageStats()
	if _, err := se.Run(bgc, pr, BinderHLPower05); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(before, se.StageStats())
	if got := d[StageSim]; got != (pipeline.Stats{Hits: 1}) {
		t.Errorf("SimWide change: sim stage delta %+v, want a pure cache hit", got)
	}
}

// TestGenerationRunsOncePerBenchmark is the regression test for the
// duplicated-front-end bug: before the stage cache, every binder of a
// benchmark regenerated and rescheduled its CDFG (and recomputed the
// register binding). One schedule and one regbind computation per
// benchmark per session, no matter how many binders run.
func TestGenerationRunsOncePerBenchmark(t *testing.T) {
	se := smallSession()
	se.Jobs = 4
	if err := se.RunAll(bgc); err != nil {
		t.Fatal(err)
	}
	stats := se.StageStats()
	nBench := len(se.Benchmarks)
	nRuns := nBench * len(AllBinders)
	for _, stage := range []string{StageSchedule, StageRegbind} {
		st := stats[stage]
		if st.Misses != nBench {
			t.Errorf("%s computed %d times, want once per benchmark (%d)", stage, st.Misses, nBench)
		}
		if st.Hits != nRuns-nBench {
			t.Errorf("%s hits = %d, want %d", stage, st.Hits, nRuns-nBench)
		}
	}
	// Every binder has a distinct spec, so binds never alias.
	if st := stats[StageBind]; st.Misses != nRuns || st.Hits != 0 {
		t.Errorf("bind stats %+v, want %d misses / 0 hits", st, nRuns)
	}
}

// statsDelta returns after-minus-before per stage.
func statsDelta(before, after map[string]pipeline.Stats) map[string]pipeline.Stats {
	d := make(map[string]pipeline.Stats)
	for stage, a := range after {
		b := before[stage]
		d[stage] = pipeline.Stats{Hits: a.Hits - b.Hits, Misses: a.Misses - b.Misses}
	}
	return d
}

// TestCacheKeySensitivity mutates each Config field in turn and asserts
// exactly the right stages miss: stages whose key covers the field must
// recompute, stages upstream of it must be served from cache. Stages
// downstream of a content-addressed boundary (e.g. everything after
// bind when only a binder parameter changed) are deliberately not
// asserted — whether they miss depends on whether the data changed.
func TestCacheKeySensitivity(t *testing.T) {
	cfg := testConfig()
	cfg.Vectors = 100
	cfg = cfg.Normalize()
	pr, _ := workload.ByName("pr")

	base := NewSession(cfg)
	base.Benchmarks = []workload.Profile{pr}
	if _, err := base.Run(bgc, pr, BinderHLPower05); err != nil {
		t.Fatal(err)
	}

	all := []string{StageSchedule, StageRegbind, StageBind, StageDatapath, StageMap, StageSim, StagePower}
	// rest returns every stage not in the given set.
	rest := func(miss ...string) []string {
		var out []string
		for _, s := range all {
			in := false
			for _, m := range miss {
				in = in || s == m
			}
			if !in {
				out = append(out, s)
			}
		}
		return out
	}

	cases := []struct {
		name   string
		mutate func(*Config)
		// miss lists stages that must recompute; hit lists stages that
		// must be cache-served. Unlisted stages are content-dependent.
		miss, hit []string
	}{
		{
			name:   "VectorSeed",
			mutate: func(c *Config) { c.VectorSeed++ },
			miss:   []string{StageSim, StagePower},
			hit:    rest(StageSim, StagePower),
		},
		{
			name:   "Vectors",
			mutate: func(c *Config) { c.Vectors = 120 },
			miss:   []string{StageSim, StagePower},
			hit:    rest(StageSim, StagePower),
		},
		{
			name:   "Delay",
			mutate: func(c *Config) { c.Delay = sim.DelayUnit },
			miss:   []string{StageSim, StagePower},
			hit:    rest(StageSim, StagePower),
		},
		{
			name:   "DelaySeed",
			mutate: func(c *Config) { c.DelaySeed++ },
			miss:   []string{StageSim, StagePower},
			hit:    rest(StageSim, StagePower),
		},
		{
			name:   "Power",
			mutate: func(c *Config) { c.Power.Vdd *= 1.1 },
			miss:   []string{StagePower},
			hit:    rest(StagePower),
		},
		{
			name:   "MapOpt",
			mutate: func(c *Config) { c.MapOpt.Mode = mapper.ModePower },
			miss:   []string{StageMap, StageSim, StagePower},
			hit:    rest(StageMap, StageSim, StagePower),
		},
		{
			name:   "PreOptimize",
			mutate: func(c *Config) { c.PreOptimize = true },
			miss:   []string{StageMap, StageSim, StagePower},
			hit:    rest(StageMap, StageSim, StagePower),
		},
		{
			name:   "ModSel",
			mutate: func(c *Config) { o := modsel.DefaultOptions(); c.ModSel = &o },
			miss:   []string{StageDatapath, StageMap, StageSim, StagePower},
			hit:    rest(StageDatapath, StageMap, StageSim, StagePower),
		},
		{
			// PortSeed feeds regbind, whose fingerprint every later key
			// chains on structurally: the entire pipeline below schedule
			// recomputes.
			name:   "PortSeed",
			mutate: func(c *Config) { c.PortSeed++ },
			miss:   rest(StageSchedule),
			hit:    []string{StageSchedule},
		},
		{
			// Binder parameters reach only the bind key; downstream is
			// content-addressed (not asserted).
			name:   "BetaAdd",
			mutate: func(c *Config) { c.BetaAdd *= 2 },
			miss:   []string{StageBind},
			hit:    []string{StageSchedule, StageRegbind},
		},
		{
			name:   "Table",
			mutate: func(c *Config) { c.Table = satable.New(c.Width, satable.EstimatorNajm) },
			miss:   []string{StageBind},
			hit:    []string{StageSchedule, StageRegbind},
		},
		{
			// A new K changes the SA table identity (bind) and the
			// mapper target; the fabric-blind front end is shared.
			// Datapath is content-addressed (K=6 binds may or may not
			// coincide) and deliberately unasserted.
			name:   "Arch",
			mutate: func(c *Config) { *c = c.WithArch(arch.StratixLike6LUT()) },
			miss:   []string{StageBind, StageMap, StageSim, StagePower},
			hit:    []string{StageSchedule, StageRegbind},
		},
		{
			// The ASIC projection keeps K=4, so the SA values — and
			// hence the binding content — are identical: datapath is a
			// content-addressed HIT while bind (table identity) and the
			// whole measurement back end (arch fingerprint in the map
			// key, projection in the power key) recompute. This is the
			// acceptance property: map/sim/power keys distinct per arch
			// even when the mapped netlist would be identical.
			name:   "ArchProjection",
			mutate: func(c *Config) { *c = c.WithArch(arch.ASICProjected(arch.CycloneII())) },
			miss:   []string{StageBind, StageMap, StageSim, StagePower},
			hit:    []string{StageSchedule, StageRegbind, StageDatapath},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := cfg
			tc.mutate(&mut)
			se := base.Derive(mut)
			before := se.StageStats()
			if _, err := se.Run(bgc, pr, BinderHLPower05); err != nil {
				t.Fatal(err)
			}
			d := statsDelta(before, se.StageStats())
			for _, stage := range tc.miss {
				if got := d[stage]; got != (pipeline.Stats{Misses: 1}) {
					t.Errorf("%s: stats delta %+v, want a recompute (1 miss)", stage, got)
				}
			}
			for _, stage := range tc.hit {
				if got := d[stage]; got != (pipeline.Stats{Hits: 1}) {
					t.Errorf("%s: stats delta %+v, want a cache hit", stage, got)
				}
			}
		})
	}
}

// TestAlphaSweepSharesFrontEnd asserts the headline cache win: an alpha
// sweep computes each benchmark's schedule and register binding exactly
// once, every additional alpha point is a front-end cache hit, and each
// alpha gets its own bind.
func TestAlphaSweepSharesFrontEnd(t *testing.T) {
	se := smallSession()
	se.Jobs = 4
	alphas := []float64{0, 0.25, 0.5, 0.75, 1}
	if _, err := AlphaSweepData(bgc, se, alphas); err != nil {
		t.Fatal(err)
	}
	stats := se.StageStats()
	nBench := len(se.Benchmarks)
	nRuns := nBench * len(alphas)
	for _, stage := range []string{StageSchedule, StageRegbind} {
		st := stats[stage]
		if st.Misses != nBench || st.Hits != nRuns-nBench {
			t.Errorf("%s stats %+v, want %d misses / %d hits", stage, st, nBench, nRuns-nBench)
		}
	}
	if st := stats[StageBind]; st.Misses != nRuns {
		t.Errorf("bind stats %+v, want %d misses (one per alpha per benchmark)", st, nRuns)
	}
	// Back-end demands must all be served — either computed or shared
	// through binding-content addressing.
	for _, stage := range []string{StageDatapath, StageMap, StageSim, StagePower} {
		st := stats[stage]
		if st.Hits+st.Misses != nRuns {
			t.Errorf("%s served %d demands, want %d", stage, st.Hits+st.Misses, nRuns)
		}
	}
}

// TestNormalizeTables covers the SA-table sharing contract:
// DefaultConfig allocates fresh tables, Normalize replaces nil or
// width-mismatched ones, and NewSession preserves (shares) a caller's
// correctly sized tables instead of reallocating.
func TestNormalizeTables(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 4 // tables are still width 8 — the classic footgun
	n := cfg.Normalize()
	if n.Table.Width != 4 || n.Table.Est != satable.EstimatorGlitch {
		t.Fatalf("Normalize table: width=%d est=%v", n.Table.Width, n.Table.Est)
	}
	if n.BaselineTable.Width != 4 || n.BaselineTable.Est != satable.EstimatorZeroDelay {
		t.Fatalf("Normalize baseline table: width=%d est=%v", n.BaselineTable.Width, n.BaselineTable.Est)
	}

	shared := satable.New(4, satable.EstimatorGlitch)
	cfg.Table = shared
	if got := cfg.Normalize().Table; got != shared {
		t.Fatal("Normalize replaced a correctly sized table")
	}

	// Sessions share, validate, and never clone a caller's tables.
	se1 := NewSession(cfg)
	se2 := NewSession(cfg)
	if se1.Cfg.Table != shared || se2.Cfg.Table != shared {
		t.Fatal("NewSession did not reuse the caller's SA table")
	}
	if se1.Cfg.BaselineTable.Width != 4 {
		t.Fatalf("NewSession kept a width-%d baseline table for a width-4 session", se1.Cfg.BaselineTable.Width)
	}

	var zero Config
	zero.Width = 4
	if z := zero.Normalize(); z.Table == nil || z.BaselineTable == nil {
		t.Fatal("Normalize left nil tables")
	}
}

// TestRunRecordsStageTrace checks every Result carries its ordered
// per-stage trace, and that a second binder's trace shows the shared
// front end as cache hits.
func TestRunRecordsStageTrace(t *testing.T) {
	se := smallSession()
	p := se.Benchmarks[0]
	r1, err := se.Run(bgc, p, BinderLOPASS)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, sp := range r1.StageTrace {
		order = append(order, sp.Stage)
	}
	if !reflect.DeepEqual(order, StageNames) {
		t.Fatalf("trace stages %v, want %v", order, StageNames)
	}
	for _, sp := range r1.StageTrace {
		if sp.CacheHit {
			t.Errorf("first run recorded a %s cache hit", sp.Stage)
		}
		if sp.Key == "" {
			t.Errorf("%s span has no key", sp.Stage)
		}
	}
	r2, err := se.Run(bgc, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]bool{}
	for _, sp := range r2.StageTrace {
		hits[sp.Stage] = sp.CacheHit
	}
	if !hits[StageSchedule] || !hits[StageRegbind] {
		t.Errorf("second binder's front end not cache-served: %+v", hits)
	}
	if hits[StageBind] {
		t.Error("different binder spec hit the bind cache")
	}
	// Session trace accumulates both runs' spans.
	if got, want := len(se.TraceSpans()), len(r1.StageTrace)+len(r2.StageTrace); got != want {
		t.Errorf("session trace has %d spans, want %d", got, want)
	}
}

// TestAblationSharesMainlineBinds checks the rerouted ablation study
// reuses the session's stage cache: its HLPower-glitch variant is the
// same bind-stage invocation as the mainline HLPower a=0.5 run, and the
// LOPASS variant aliases the mainline LOPASS bind.
func TestAblationSharesMainlineBinds(t *testing.T) {
	se := smallSession()
	se.Jobs = 2
	for _, p := range se.Benchmarks {
		for _, b := range []Binder{BinderLOPASS, BinderHLPower05} {
			if _, err := se.Run(bgc, p, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := se.StageStats()
	rows, err := AblationData(bgc, se)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(se.Benchmarks) * len(ablationVariants); len(rows) != want {
		t.Fatalf("ablation produced %d rows, want %d", len(rows), want)
	}
	d := statsDelta(before, se.StageStats())
	nBench := len(se.Benchmarks)
	if st := d[StageSchedule]; st.Misses != 0 {
		t.Errorf("ablation regenerated %d schedules; want pure cache hits", st.Misses)
	}
	if st := d[StageRegbind]; st.Misses != 0 {
		t.Errorf("ablation recomputed %d register bindings; want pure cache hits", st.Misses)
	}
	// Of the 7 variants, three alias existing binds: LOPASS and
	// HLPower-glitch match the mainline runs, and HLPower+modsel shares
	// HLPower-glitch's bind (module selection only enters at the
	// datapath stage). Exactly 4 fresh binds per benchmark.
	if st := d[StageBind]; st.Misses != 4*nBench || st.Hits != 3*nBench {
		t.Errorf("ablation bind delta %+v, want %d misses / %d hits", st, 4*nBench, 3*nBench)
	}
}

package flow

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// fullMatrixSession returns a session over the full seven-benchmark
// paper suite at reduced scale, for sweep-failure tests that need the
// real 7×3 matrix.
func fullMatrixSession(jobs int) *Session {
	cfg := testConfig()
	cfg.Vectors = 50
	se := NewSession(cfg)
	se.Jobs = jobs
	return se
}

// pairByName resolves a (bench, binder) name pair against the session's
// sweep matrix.
func pairByName(t *testing.T, se *Session, bench, binder string) (workload.Profile, Binder) {
	t.Helper()
	for _, p := range se.Benchmarks {
		if p.Name != bench {
			continue
		}
		for _, b := range AllBinders {
			if b.Name == binder {
				return p, b
			}
		}
	}
	t.Fatalf("pair %s/%s not in the sweep matrix", bench, binder)
	return workload.Profile{}, Binder{}
}

// checkGoroutines fails the test if goroutines leaked relative to the
// count captured at call time. It retries with backoff so goroutines
// that are already unwinding (worker pools draining after Wait) do not
// flake the check — a hand-rolled stand-in for goleak, which this repo
// deliberately does not depend on.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestSweepKeepGoingWithInjectedFaults is the acceptance scenario of
// the failure model: a seeded injector forces one panic and one error
// inside a full 7×3 sweep under keep-going. The sweep must complete,
// every unaffected pair must carry a result, and the failure report
// must name the exact stage, benchmark, and binder of both casualties.
func TestSweepKeepGoingWithInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix sweep")
	}
	leak := checkGoroutines(t)

	fi := pipeline.NewFaultInjector(11,
		pipeline.FaultRule{Stage: StageMap, Bench: "chem", Binder: BinderHLPower05.Name, PPanic: 1},
		pipeline.FaultRule{Stage: StageSim, Bench: "wang", Binder: BinderLOPASS.Name, PError: 1},
	)
	ctx := pipeline.WithInjector(context.Background(), fi)

	se := fullMatrixSession(8)
	rep, err := se.Sweep(ctx, SweepOptions{KeepGoing: true})
	if err == nil {
		t.Fatal("sweep with injected faults reported success")
	}

	total := len(se.Benchmarks) * len(AllBinders)
	if len(rep.Pairs) != total {
		t.Fatalf("report covers %d pairs, want %d", len(rep.Pairs), total)
	}
	if got, want := rep.Completed(), total-2; got != want {
		t.Fatalf("%d pairs completed, want %d (every pair but the two injected)", got, want)
	}

	fails := rep.Failures()
	if len(fails) != 2 {
		t.Fatalf("got %d failures, want 2: %+v", len(fails), fails)
	}
	// Sweep order is benchmark-major over the paper suite, so chem
	// precedes wang.
	boom, errf := fails[0], fails[1]
	if boom.Bench != "chem" || boom.Binder != BinderHLPower05.Name || boom.Stage != StageMap || !boom.Panicked {
		t.Fatalf("panic failure misattributed: %+v", boom)
	}
	// The injected-panic chain survives stage-level recovery: the
	// failure is identifiable as injected, not just as a panic.
	if !boom.Injected || !errors.Is(boom.Err, pipeline.ErrInjected) {
		t.Fatalf("injected panic lost its sentinel: %+v", boom)
	}
	if errf.Bench != "wang" || errf.Binder != BinderLOPASS.Name || errf.Stage != StageSim || errf.Panicked {
		t.Fatalf("error failure misattributed: %+v", errf)
	}
	if !errf.Injected || !errors.Is(errf.Err, pipeline.ErrInjected) {
		t.Fatalf("injected error lost its sentinel: %+v", errf)
	}
	if sErr, ok := pipeline.AsStageError(errf.Err); !ok || sErr.Scope.Bench != "wang" {
		t.Fatalf("errors.As lost the StageError: %v", errf.Err)
	}

	// Unaffected pairs carry usable results.
	for _, ps := range rep.Pairs {
		if ps.OK() && (ps.Result == nil || ps.Result.LUTs == 0) {
			t.Fatalf("completed pair %s/%s has no result", ps.Bench, ps.Binder)
		}
	}

	// The poisoned artifacts must not be cached: rerunning the failed
	// pairs without the injector heals both.
	for _, f := range fails {
		p, b := pairByName(t, se, f.Bench, f.Binder)
		if _, err := se.Run(context.Background(), p, b); err != nil {
			t.Fatalf("pair %s/%s did not heal after injection: %v", f.Bench, f.Binder, err)
		}
	}
	leak()
}

// TestSweepFailureReportDeterministic runs the injected-fault sweep at
// -j1 and -j8 (twice each) and requires identical failure reports:
// positional injection plus index-ordered error selection make the
// report a pure function of the sweep matrix, not of scheduling.
func TestSweepFailureReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix sweeps")
	}
	var pairs int
	report := func(jobs int) []Failure {
		fi := pipeline.NewFaultInjector(42,
			pipeline.FaultRule{Stage: StageBind, PPanic: 0.2, PError: 0.2},
		)
		ctx := pipeline.WithInjector(context.Background(), fi)
		se := fullMatrixSession(jobs)
		// A 4-benchmark subset keeps the four race-detector sweeps
		// affordable; scheduling nondeterminism is matrix-size
		// independent, and the full 7×3 matrix is covered by
		// TestSweepKeepGoingWithInjectedFaults.
		se.Benchmarks = se.Benchmarks[:4]
		pairs = len(se.Benchmarks) * len(AllBinders)
		rep, _ := se.Sweep(ctx, SweepOptions{KeepGoing: true})
		fails := make([]Failure, 0, len(rep.Pairs))
		for _, f := range rep.Failures() {
			c := *f
			c.Err = nil // compare the serializable projection
			fails = append(fails, c)
		}
		return fails
	}
	serial := report(1)
	if len(serial) == 0 {
		t.Fatal("seed 42 injected nothing; the test exercises nothing")
	}
	if len(serial) == pairs {
		t.Fatal("seed 42 killed every pair; pick different probabilities")
	}
	for run, jobs := range []int{8, 1, 8} {
		if got := report(jobs); !reflect.DeepEqual(got, serial) {
			t.Fatalf("run %d (-j%d) failure report differs from -j1:\n-j1: %+v\n got: %+v",
				run, jobs, serial, got)
		}
	}
}

// TestSweepStopOnError checks the default (non-keep-going) mode: the
// first failure in sweep order is returned, in-flight work is
// cancelled, and the report marks unfinished pairs as cancelled rather
// than inventing results for them.
func TestSweepStopOnError(t *testing.T) {
	leak := checkGoroutines(t)
	se := smallSession()
	se.Jobs = 4
	fi := pipeline.NewFaultInjector(5,
		pipeline.FaultRule{Stage: StageBind, Bench: "pr", Binder: BinderLOPASS.Name, PError: 1},
	)
	ctx := pipeline.WithInjector(context.Background(), fi)
	rep, err := se.Sweep(ctx, SweepOptions{})
	if err == nil {
		t.Fatal("stop-on-error sweep reported success")
	}
	if !errors.Is(err, pipeline.ErrInjected) {
		t.Fatalf("sweep error is not the injected failure: %v", err)
	}
	sErr, ok := pipeline.AsStageError(err)
	if !ok || sErr.Stage != StageBind || sErr.Scope.Bench != "pr" {
		t.Fatalf("sweep error lost provenance: %v", err)
	}
	// Every non-completed pair must be attributed: either the injected
	// failure or a cancellation, never a silent hole.
	for _, ps := range rep.Pairs {
		if ps.OK() {
			continue
		}
		f := ps.Failure
		if !f.Injected && !f.Canceled {
			t.Fatalf("pair %s/%s failed for an unexplained reason: %+v", ps.Bench, ps.Binder, f)
		}
	}
	leak()
}

// TestSweepCancelledContext checks mid-sweep cancellation: RunAll with
// an already-cancelled context returns promptly with context.Canceled
// and leaks no goroutines.
func TestSweepCancelledContext(t *testing.T) {
	leak := checkGoroutines(t)
	se := smallSession()
	se.Jobs = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- se.RunAll(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll did not return after cancellation")
	}
	// The session must recover: the same pairs run fine afterwards.
	if err := se.RunAll(context.Background()); err != nil {
		t.Fatalf("session did not recover from cancellation: %v", err)
	}
	leak()
}

// TestSweepTimeoutCancelsSimulation cancels mid-flight via a deadline:
// the sim stage's vector-boundary checks must surface the deadline
// through the StageError chain instead of running the sweep to the end.
func TestSweepTimeoutCancelsSimulation(t *testing.T) {
	se := smallSession()
	se.Cfg.Vectors = 100000 // long enough that the deadline lands mid-simulation
	se.Jobs = 2
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := se.RunAll(ctx)
	if err == nil {
		t.Fatal("sweep beat a 50ms deadline over 100k-vector simulations")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v; vector-boundary checks are not wired", elapsed)
	}
}

// TestSweepReportJSON pins the machine-readable report format.
func TestSweepReportJSON(t *testing.T) {
	rep := &SweepReport{Pairs: []PairStatus{
		{Bench: "pr", Binder: "LOPASS", Result: &Result{}},
		{Bench: "pr", Binder: "HLPower a=0.5", Failure: &Failure{
			Bench: "pr", Binder: "HLPower a=0.5", Stage: StageMap,
			Panicked: true, Cause: "stage map (pr/HLPower a=0.5): stage panicked: boom",
		}},
	}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Total     int `json:"total"`
		Completed int `json:"completed"`
		Failed    int `json:"failed"`
		Failures  []struct {
			Bench    string `json:"bench"`
			Binder   string `json:"binder"`
			Stage    string `json:"stage"`
			Panicked bool   `json:"panicked"`
			Cause    string `json:"cause"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Total != 2 || got.Completed != 1 || got.Failed != 1 {
		t.Fatalf("counts wrong: %+v", got)
	}
	f := got.Failures[0]
	if f.Bench != "pr" || f.Stage != StageMap || !f.Panicked || !strings.Contains(f.Cause, "boom") {
		t.Fatalf("failure record wrong: %+v", f)
	}
	// A clean report serializes an empty array, not null.
	buf.Reset()
	if err := (&SweepReport{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"failures": []`) {
		t.Fatalf("clean report must have an empty failures array:\n%s", buf.String())
	}
}

// TestSessionRunErrorsAreStageErrors checks errors.As works end to end
// through Session.Run for an organic failure (no injector): an
// unschedulable profile fails in the schedule stage with full
// provenance.
func TestSessionRunErrorsAreStageErrors(t *testing.T) {
	se := smallSession()
	bad := se.Benchmarks[0]
	bad.Name = "bad"
	bad.RC.Add, bad.RC.Mult = 0, 0
	_, err := se.Run(context.Background(), bad, BinderLOPASS)
	if err == nil {
		t.Fatal("unschedulable profile bound successfully")
	}
	sErr, ok := pipeline.AsStageError(err)
	if !ok {
		t.Fatalf("organic failure is not a StageError: %v", err)
	}
	if sErr.Stage != StageSchedule || sErr.Scope.Bench != "bad" {
		t.Fatalf("provenance wrong: %+v", sErr)
	}
}

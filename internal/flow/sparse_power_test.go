package flow

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestSparsePowerDelta bounds the quality cost of the bounded candidate
// store: binding a control-heavy CDFG with the default sparse k must
// not cost more than 1% dynamic power over the Exact dense binding.
// The bound is one-sided — the exact engine is itself a greedy
// iterative matcher, not a global optimum, so the sparse store may
// legitimately land on a cheaper binding (it does on this graph). The
// two runs share every other pipeline stage (same schedule, register
// binding, vectors), so any delta is attributable to candidate
// admission alone.
func TestSparsePowerDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline comparison")
	}
	g := workload.ControlHeavy(16, 6, 2, 931)
	rc := cdfg.ResourceConstraint{Add: 10, Mult: 12}

	exactCfg := testConfig()
	exactCfg.BindExact = true
	exact, err := RunGraph(g, "ctrl-500", rc, BinderHLPower05, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.BindReport == nil || exact.BindReport.Mode != "exact" {
		t.Fatalf("reference run mode = %+v, want exact", exact.BindReport)
	}

	sparseCfg := testConfig()
	sparseCfg.BindK = core.DefaultCandidateK
	sparse, err := RunGraph(g, "ctrl-500", rc, BinderHLPower05, sparseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.BindReport == nil || sparse.BindReport.Mode != "sparse" {
		t.Fatalf("candidate run mode = %+v, want sparse", sparse.BindReport)
	}

	pe, ps := exact.Power.DynamicPowerMW, sparse.Power.DynamicPowerMW
	if pe <= 0 || ps <= 0 {
		t.Fatalf("degenerate power: exact=%v sparse=%v", pe, ps)
	}
	if delta := (ps - pe) / pe; delta > 0.01 {
		t.Fatalf("sparse k=%d power %.4f mW costs %.2f%% over exact %.4f mW (budget 1%%)",
			core.DefaultCandidateK, ps, delta*100, pe)
	}
	t.Logf("exact=%.4f mW sparse=%.4f mW delta=%+.3f%%", pe, ps, (ps-pe)/pe*100)
}

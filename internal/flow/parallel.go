package flow

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// This file is the concurrency layer of the experiment harness. The
// paper's whole evaluation (§6.1) is an embarrassingly parallel sweep of
// Benchmarks × Binders: every run is fully determined by its inputs and
// the shared seeds (VectorSeed, PortSeed, DelaySeed), shares no mutable
// state with any other run, and therefore produces byte-identical
// results whether executed serially or fanned out over a worker pool.
// RunAll exploits that to fill the Session cache with -j workers; the
// table/figure generators then read the warm cache in deterministic
// benchmark order.
//
// The failure model is deterministic too: runItems records one error
// slot per item, a panic in any item is confined to that item's slot
// (converted to a *pipeline.StageError by the worker's recover), and
// firstError picks the winner by item index, never by goroutine
// scheduling — so the reported failure is identical under -j1 and -j8.

// AllBinders is the full binder matrix of the paper's sweep (Tables 3-4,
// Figure 3).
var AllBinders = []Binder{BinderLOPASS, BinderHLPower1, BinderHLPower05}

// normJobs resolves a worker-count request: <= 0 selects GOMAXPROCS.
func normJobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// safeItem runs fn(ctx, i) with panic isolation: a panic escaping the
// item (a bug in harness glue — stage panics are already recovered at
// the stage boundary) becomes a diagnosed *pipeline.StageError instead
// of killing the whole process, so a sweep under keep-going loses one
// item, not the run.
func safeItem(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = pipeline.NewPanicError("sweep", pipeline.Scope{}, "", r, debug.Stack())
		}
	}()
	return fn(ctx, i)
}

// runItems runs fn(ctx, 0..n-1) on up to jobs workers and returns the
// per-item error slice (index-aligned with the items). A panicking item
// is recorded as a *pipeline.StageError in its own slot.
//
// With stopOnErr, the first failure cancels the item context: in-flight
// items observe the cancellation at their next check and unstarted items
// are recorded as cancelled without running. Without it (keep-going),
// every item runs to completion regardless of other items' failures;
// only the parent ctx can stop the sweep early.
//
// jobs <= 1 degrades to a plain serial loop with identical semantics,
// which is what makes -j1 and -j8 failure reports comparable.
func runItems(ctx context.Context, n, jobs int, stopOnErr bool, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	ictx := ctx
	var cancel context.CancelFunc
	if stopOnErr {
		ictx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	one := func(i int) {
		if err := ictx.Err(); err != nil {
			errs[i] = err
			return
		}
		errs[i] = safeItem(ictx, i, fn)
		if errs[i] != nil && stopOnErr {
			cancel()
		}
	}
	jobs = normJobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			one(i)
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				one(i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// firstError picks the sweep's reported error from a per-item slice:
// the lowest-index error that is not a pure cancellation, falling back
// to the lowest-index cancellation. Real failures therefore win over
// the cancellation cascade they trigger under stop-on-error, and the
// choice depends only on item order — never on which worker goroutine
// happened to fail first.
func firstError(errs []error) error {
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return err
	}
	return canceled
}

// sweepPair is one (benchmark, binder) item of a sweep, in deterministic
// benchmark-major order.
type sweepPair struct {
	p workload.Profile
	b Binder
}

// sweepPairs enumerates the session's sweep matrix.
func (se *Session) sweepPairs(binders []Binder) []sweepPair {
	if len(binders) == 0 {
		binders = AllBinders
	}
	pairs := make([]sweepPair, 0, len(se.Benchmarks)*len(binders))
	for _, p := range se.Benchmarks {
		for _, b := range binders {
			pairs = append(pairs, sweepPair{p, b})
		}
	}
	return pairs
}

// RunAll executes every (benchmark, binder) pair of the session's sweep
// on Session.Jobs workers (0 = GOMAXPROCS), filling the run cache. With
// no binders given it runs the full paper matrix (AllBinders). Results
// are identical to serial execution — every run is independently seeded
// — and the first failure (in sweep order, see firstError) cancels the
// in-flight remainder and is returned. Use Sweep for keep-going
// semantics and a structured failure report.
func (se *Session) RunAll(ctx context.Context, binders ...Binder) error {
	pairs := se.sweepPairs(binders)
	errs := runItems(ctx, len(pairs), se.Jobs, true, func(ctx context.Context, i int) error {
		_, err := se.Run(ctx, pairs[i].p, pairs[i].b)
		return err
	})
	return firstError(errs)
}

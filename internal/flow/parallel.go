package flow

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/workload"
)

// This file is the concurrency layer of the experiment harness. The
// paper's whole evaluation (§6.1) is an embarrassingly parallel sweep of
// Benchmarks × Binders: every run is fully determined by its inputs and
// the shared seeds (VectorSeed, PortSeed, DelaySeed), shares no mutable
// state with any other run, and therefore produces byte-identical
// results whether executed serially or fanned out over a worker pool.
// RunAll exploits that to fill the Session cache with -j workers; the
// table/figure generators then read the warm cache in deterministic
// benchmark order.

// AllBinders is the full binder matrix of the paper's sweep (Tables 3-4,
// Figure 3).
var AllBinders = []Binder{BinderLOPASS, BinderHLPower1, BinderHLPower05}

// normJobs resolves a worker-count request: <= 0 selects GOMAXPROCS.
func normJobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// forEach runs fn(0..n-1) on up to jobs workers and returns the
// lowest-index error (so the reported failure does not depend on
// goroutine scheduling). jobs <= 1 degrades to a plain serial loop.
func forEach(n, jobs int, fn func(i int) error) error {
	jobs = normJobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes every (benchmark, binder) pair of the session's sweep
// on Session.Jobs workers (0 = GOMAXPROCS), filling the run cache. With
// no binders given it runs the full paper matrix (AllBinders). Results
// are identical to serial execution — every run is independently seeded
// — and the first error (in sweep order) is returned.
func (se *Session) RunAll(binders ...Binder) error {
	if len(binders) == 0 {
		binders = AllBinders
	}
	type pair struct {
		p workload.Profile
		b Binder
	}
	pairs := make([]pair, 0, len(se.Benchmarks)*len(binders))
	for _, p := range se.Benchmarks {
		for _, b := range binders {
			pairs = append(pairs, pair{p, b})
		}
	}
	return forEach(len(pairs), se.Jobs, func(i int) error {
		_, err := se.Run(pairs[i].p, pairs[i].b)
		return err
	})
}

package flow

// This file connects a Session to the durable artifact store
// (internal/store): which artifact classes persist, under which class
// names, and with which codecs. Three classes are durable:
//
//   - "sim" (sim.Counts) and "power" (power.Report): their in-memory
//     cache keys are already content-addressed hash chains rooted at
//     the CDFG content fingerprint, so the keys are stable across
//     processes and globally unique across configurations — they
//     persist under their own class names, unnamespaced. Simulation is
//     the flow's most expensive stage; a restarted daemon that replays
//     the (cheap, deterministic) front end re-derives the same sim key
//     and warm-starts from disk.
//   - "run" (*Result): the run cache key is semantic (profile content +
//     resolved binder parameters, see runKey) but deliberately omits
//     the session-wide configuration, so on disk the class is stamped
//     per configuration: "run@<Config.Fingerprint()>". A whole-run hit
//     skips even the front end.
//
// The SA tables attach their own "sa@<table fingerprint>" classes
// (satable.AttachStore). The mapper's memoized macro covers persist
// under "macro@<arch fingerprint>" with content-addressed keys (see
// mapper.MacroCache) — a restarted daemon re-maps a large datapath
// without re-covering a single repeated macro. Every other stage class
// (bind, map, ...) holds pointer-heavy netlists with no codec; the
// store skips them and they stay memory-only.

import (
	"repro/internal/mapper"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/store"
)

// Fingerprint canonically identifies the semantic content of a
// configuration: every field that influences any stage's output (the
// worker-count and lane-width knobs, which are bit-identical at every
// setting, are excluded, exactly as they are from stage cache keys).
// Equal fingerprints mean a run result computed under one Config is
// valid under the other — the contract the durable store's
// run@<fingerprint> class namespace enforces.
func (c Config) Fingerprint() string {
	c = c.Normalize()
	h := pipeline.NewHasher().
		Str(c.Arch.Fingerprint()).Int(c.Width).Int(c.Vectors).
		Int64(c.VectorSeed).Int64(c.PortSeed).
		Str(tableFP(c.Table)).Str(tableFP(c.BaselineTable)).
		F64(c.BetaAdd).F64(c.BetaMult).
		Int(c.BindK).Bool(c.BindExact).
		Str(modselFP(resolveModSel(c))).Bool(c.PreOptimize).
		Int(int(c.Delay)).Int64(c.DelaySeed).
		Str(powerFP(c.Power)).Str(projFP(c.Arch.Projection))
	return mapOptFPInto(h, c.MapOpt).Sum()
}

// AttachStore backs the session's caches with a durable store: stage
// misses on the serializable classes and run-cache misses consult the
// store before computing, and every successful computation is written
// through (atomically, checksummed) before the request returns. The
// session's SA tables attach too, so the expensive partial-datapath
// characterizations persist across processes.
//
// Call once per session, before the first Run; derived sessions
// (Derive) share the attached stage cache but must AttachStore
// themselves to persist their own run class. Concurrent sessions in one
// process may share one *store.Store; a second *process* must use its
// own store directory (Open enforces single-writer locking).
func (se *Session) AttachStore(st *store.Store) {
	st.RegisterCodec(StageSim, store.JSONOf[sim.Counts]())
	st.RegisterCodec(StagePower, store.JSONOf[power.Report]())
	st.RegisterCodec("run@", store.JSONPtr[Result]())
	st.RegisterCodec("macro@", store.JSONPtr[mapper.MacroCover]())
	se.stages.SetBacking(st)
	runClass := "run@" + se.Cfg.Fingerprint()
	se.runs.SetBacking(pipeline.RenameBacking(st, func(string) string { return runClass }))
	se.Cfg.Table.AttachStore(st)
	se.Cfg.BaselineTable.AttachStore(st)
}

package flow

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
)

// AlphaSweepRow is one (benchmark, alpha) point of an HLPower
// alpha-sensitivity sweep (Eq. 4's power/mux weighting).
type AlphaSweepRow struct {
	Bench   string
	Alpha   float64
	PowerMW float64
	LUTs    int
	Depth   int
	MuxLen  int
}

// AlphaBinders returns HLPower binder configurations for a set of alpha
// values, named canonically ("HLPower a=<v>") so sweep runs land in the
// session run cache alongside the standard binders.
func AlphaBinders(alphas []float64) []Binder {
	bs := make([]Binder, len(alphas))
	for i, a := range alphas {
		bs[i] = Binder{Name: fmt.Sprintf("HLPower a=%v", a), UseHLPower: true, Alpha: a}
	}
	return bs
}

// AlphaSweepData runs HLPower at every alpha over the session's
// benchmarks, fanned out over Session.Jobs workers. The sweep is where
// the stage cache pays off hardest: every alpha point of a benchmark
// shares one schedule and one register binding, and alpha points whose
// bindings converge to the same solution (common at the extremes of the
// alpha range) share the elaborated datapath, mapping, simulation, and
// power analysis as well — see Session.StageStats for the realized hit
// counts. Row order is benchmark-major in suite order, then alpha order.
func AlphaSweepData(ctx context.Context, se *Session, alphas []float64) ([]AlphaSweepRow, error) {
	binders := AlphaBinders(alphas)
	if err := se.RunAll(ctx, binders...); err != nil {
		return nil, err
	}
	rows := make([]AlphaSweepRow, 0, len(se.Benchmarks)*len(binders))
	for _, p := range se.Benchmarks {
		for i, b := range binders {
			r, err := se.Run(ctx, p, b)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AlphaSweepRow{
				Bench:   p.Name,
				Alpha:   alphas[i],
				PowerMW: r.Power.DynamicPowerMW,
				LUTs:    r.LUTs,
				Depth:   r.Depth,
				MuxLen:  r.FUMux.Length,
			})
		}
	}
	return rows, nil
}

// AlphaSweep prints the alpha-sensitivity sweep.
func AlphaSweep(ctx context.Context, w io.Writer, se *Session, alphas []float64) error {
	rows, err := AlphaSweepData(ctx, se, alphas)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\talpha\tPower(mW)\tLUTs\tDepth\tMUXLen")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%g\t%.2f\t%d\t%d\t%d\n",
			r.Bench, r.Alpha, r.PowerMW, r.LUTs, r.Depth, r.MuxLen)
	}
	return tw.Flush()
}

package flow

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
)

// TestArchSweepSharesFrontEndAndProjects drives the cross-architecture
// sweep over a small benchmark set and checks its two core contracts:
// the fabric-blind front end (schedule, regbind) is computed once per
// benchmark and shared across every target, and the ASIC rows relate to
// the K=4 rows by exactly the Kuon & Rose gap factors — the projected
// fabric runs the identical mapping and simulation, so power divides by
// precisely PowerDiv and the period by FreqMult.
func TestArchSweepSharesFrontEndAndProjects(t *testing.T) {
	se := smallSession()
	se.Jobs = 4
	targets := arch.Presets()
	rows, err := ArchSweepData(bgc, se, targets)
	if err != nil {
		t.Fatal(err)
	}
	nBench := len(se.Benchmarks)
	if len(rows) != nBench*len(targets) {
		t.Fatalf("got %d rows, want %d", len(rows), nBench*len(targets))
	}

	stats := se.StageStats()
	if st := stats[StageSchedule]; st.Misses != nBench {
		t.Errorf("schedule computed %d times, want once per benchmark (%d): archs must share the front end", st.Misses, nBench)
	}
	if st := stats[StageRegbind]; st.Misses != nBench {
		t.Errorf("regbind computed %d times, want %d", st.Misses, nBench)
	}
	// Every (benchmark, binder, arch) triple must get its own mapped
	// implementation, simulation, and power analysis — arch fingerprints
	// key the whole back end, so no demand may alias across targets even
	// when (as for k4 vs k4-asic) the mapped netlist would be identical.
	nRuns := nBench * 2 * len(targets)
	for _, stage := range []string{StageMap, StageSim, StagePower} {
		if st := stats[stage]; st.Misses != nRuns {
			t.Errorf("%s computed %d times, want %d (distinct per arch)", stage, st.Misses, nRuns)
		}
	}

	byArch := make(map[string]map[string]ArchSweepRow)
	for _, r := range rows {
		if byArch[r.Arch] == nil {
			byArch[r.Arch] = make(map[string]ArchSweepRow)
		}
		byArch[r.Arch][r.Bench] = r
	}
	proj := arch.LogicProjection()
	for _, p := range se.Benchmarks {
		k4, asic := byArch["k4"][p.Name], byArch["k4-asic"][p.Name]
		if !asic.Projected || k4.Projected {
			t.Fatalf("%s: projection flags wrong: k4=%v asic=%v", p.Name, k4.Projected, asic.Projected)
		}
		if got, want := asic.PowerH, k4.PowerH/proj.PowerDiv; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: projected power %g, want %g (÷%g)", p.Name, got, want, proj.PowerDiv)
		}
		if got, want := asic.ClockNsH, k4.ClockNsH/proj.FreqMult; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: projected period %g, want %g (÷%g)", p.Name, got, want, proj.FreqMult)
		}
		if got, want := asic.AreaH, float64(k4.LUTsH)/proj.AreaDiv; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: projected area %g, want %g (÷%g)", p.Name, got, want, proj.AreaDiv)
		}
		// The ratio metric is projection-invariant.
		if math.Abs(asic.PowerPct-k4.PowerPct) > 1e-9 {
			t.Errorf("%s: projection changed the HLPower reduction: %g vs %g", p.Name, asic.PowerPct, k4.PowerPct)
		}
		k6 := byArch["k6"][p.Name]
		if k6.K != 6 || k6.DepthH <= 0 {
			t.Fatalf("%s: malformed k6 row %+v", p.Name, k6)
		}
		// Wider LUTs absorb more logic per level: never more LUTs or
		// deeper covers than K=4 under the same depth-oriented mapping.
		if k6.LUTsH > k4.LUTsH {
			t.Errorf("%s: K=6 uses more LUTs than K=4 (%d > %d)", p.Name, k6.LUTsH, k4.LUTsH)
		}
		if k6.DepthH > k4.DepthH {
			t.Errorf("%s: K=6 mapped deeper than K=4 (%d > %d)", p.Name, k6.DepthH, k4.DepthH)
		}
	}
}

// TestArchSweepRenders checks the printed table carries one line per
// (benchmark, target) plus the header.
func TestArchSweepRenders(t *testing.T) {
	se := smallSession()
	se.Jobs = 4
	var buf bytes.Buffer
	if err := ArchSweep(bgc, &buf, se, []arch.Target{arch.CycloneII(), arch.ASICProjected(arch.CycloneII())}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + len(se.Benchmarks)*2; len(lines) != want {
		t.Fatalf("rendered %d lines, want %d:\n%s", len(lines), want, buf.String())
	}
	if !strings.Contains(lines[0], "Arch") || !strings.Contains(lines[0], "PowerH(mW)") {
		t.Errorf("header missing columns: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "k4") {
			t.Errorf("row missing arch label: %q", l)
		}
	}
}

// TestArchSweepRejectsInvalidTarget covers the validation path.
func TestArchSweepRejectsInvalidTarget(t *testing.T) {
	se := smallSession()
	bad := arch.CycloneII()
	bad.K = 9
	if _, err := ArchSweepData(bgc, se, []arch.Target{bad}); err == nil {
		t.Fatal("sweep accepted an invalid target")
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// ingestBody builds a small valid inline-CDFG submission: two products
// summed, every op consumed.
func ingestBody(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"inputs": ["a","b","c","d"],
		"ops": [
			{"name":"m1","kind":"mult","args":["a","b"]},
			{"name":"m2","kind":"mult","args":["c","d"]},
			{"name":"s","kind":"add","args":["m1","m2"]}
		],
		"outputs": ["s"],
		"rc": {"add":1,"mult":1}
	}`, name)
}

// TestIngestSingleAndErrors drives one submission end to end, checks a
// resubmission is served from the content-addressed run cache (same
// numbers), then walks the malformed-spec space.
func TestIngestSingleAndErrors(t *testing.T) {
	leak, fds := checkGoroutines(t), checkFDs(t)
	s := New(Options{Cfg: testConfig(), BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())

	var ir IngestResult
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", ingestBody("g1"))
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil || ir.PowerMW <= 0 || ir.Batch < 1 {
		t.Fatalf("ingest body %s (err %v)", body, err)
	}
	first := ir

	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", ingestBody("g1"))
	if resp.StatusCode != 200 {
		t.Fatalf("re-ingest: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.PowerMW != first.PowerMW || ir.LUTs != first.LUTs {
		t.Fatalf("re-ingested result drifted: %s", body)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"no name", `{"inputs":["a","b"],"ops":[{"name":"s","kind":"add","args":["a","b"]}],"outputs":["s"],"rc":{"add":1,"mult":1}}`},
		{"no ops", `{"name":"g","inputs":["a"],"ops":[],"outputs":[],"rc":{"add":1,"mult":1}}`},
		{"bad kind", `{"name":"g","inputs":["a","b"],"ops":[{"name":"s","kind":"xor","args":["a","b"]}],"outputs":["s"],"rc":{"add":1,"mult":1}}`},
		{"bad arity", `{"name":"g","inputs":["a","b"],"ops":[{"name":"s","kind":"add","args":["a"]}],"outputs":["s"],"rc":{"add":1,"mult":1}}`},
		{"unknown arg", `{"name":"g","inputs":["a","b"],"ops":[{"name":"s","kind":"add","args":["a","z"]}],"outputs":["s"],"rc":{"add":1,"mult":1}}`},
		{"dup name", `{"name":"g","inputs":["a","b"],"ops":[{"name":"a","kind":"add","args":["a","b"]}],"outputs":["a"],"rc":{"add":1,"mult":1}}`},
		{"unknown output", `{"name":"g","inputs":["a","b"],"ops":[{"name":"s","kind":"add","args":["a","b"]}],"outputs":["z"],"rc":{"add":1,"mult":1}}`},
		{"dead op", `{"name":"g","inputs":["a","b"],"ops":[{"name":"s","kind":"add","args":["a","b"]},{"name":"t","kind":"add","args":["a","b"]}],"outputs":["s"],"rc":{"add":1,"mult":1}}`},
		{"zero rc", `{"name":"g","inputs":["a","b"],"ops":[{"name":"s","kind":"add","args":["a","b"]}],"outputs":["s"],"rc":{"add":0,"mult":1}}`},
	} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", tc.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: got %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}

	ts.Close()
	fds()
	leak()
}

// TestIngestBatching is the streaming scenario: concurrent submissions
// inside one batch window must share admission slots — /statsz reports
// fewer batches than requests and a max batch above one.
func TestIngestBatching(t *testing.T) {
	leak := checkGoroutines(t)
	s := New(Options{Cfg: testConfig(), BatchWindow: 300 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())

	const n = 6
	var wg sync.WaitGroup
	errs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", ingestBody(fmt.Sprintf("g%d", i)))
			if resp.StatusCode != 200 {
				errs[i] = fmt.Sprintf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("submission %d: %s", i, e)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Statsz
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.Requests != n {
		t.Fatalf("ingest requests = %d, want %d", st.Ingest.Requests, n)
	}
	if st.Ingest.Batches >= st.Ingest.Requests {
		t.Fatalf("batches (%d) not below requests (%d): batching never engaged", st.Ingest.Batches, st.Ingest.Requests)
	}
	if st.Ingest.MaxBatch < 2 {
		t.Fatalf("max batch = %d, want >= 2", st.Ingest.MaxBatch)
	}
	if len(st.BindStats) == 0 {
		t.Fatal("statsz bind_stats empty after ingest runs")
	}
	for _, bs := range st.BindStats {
		if bs.Report.Mode == "" {
			t.Fatalf("bind_stats %s/%s missing edge-store mode: %+v", bs.Bench, bs.Algo, bs.Report)
		}
	}

	ts.Close()
	leak()
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// testConfig is a small fast configuration for server tests.
func testConfig() flow.Config {
	cfg := flow.DefaultConfig()
	cfg.Vectors = 20
	return cfg
}

// checkGoroutines fails the test if goroutines leaked relative to the
// count captured at call time, retrying with backoff so goroutines
// already unwinding don't flake the check (same hand-rolled goleak
// stand-in as the flow failure tests).
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// checkFDs fails the test if file descriptors leaked (sockets,
// listener, store files), with the same unwinding tolerance.
func checkFDs(t *testing.T) func() {
	t.Helper()
	count := func() int {
		des, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			return -1 // not a procfs platform; check degrades to a no-op
		}
		return len(des)
	}
	before := count()
	return func() {
		t.Helper()
		if before < 0 {
			return
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := count(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("fd leak: %d before, %d after", before, count())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestBindWarmAndErrors drives the bind endpoint through its response
// shapes: cold 200, warm 200, 404 unknown bench, 400 bad binder and
// malformed body — with goroutine and fd leak checks bracketing it all.
func TestBindWarmAndErrors(t *testing.T) {
	leak, fds := checkGoroutines(t), checkFDs(t)
	s := New(Options{Cfg: testConfig()})
	ts := httptest.NewServer(s.Handler())

	var br BindResult
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/bind", `{"bench":"pr","binder":"hlpower"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("cold bind: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil || br.Warm || br.PowerMW <= 0 {
		t.Fatalf("cold bind body %s (err %v)", body, err)
	}
	cold := br

	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/bind", `{"bench":"pr","binder":"hlpower"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("warm bind: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil || !br.Warm {
		t.Fatalf("second bind not warm: %s", body)
	}
	if br.PowerMW != cold.PowerMW || br.LUTs != cold.LUTs {
		t.Fatalf("warm result drifted: %s", body)
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"bench":"nosuch"}`, 404},
		{`{"bench":"pr","binder":"magic"}`, 400},
		{`{"bench":"pr","alpha":3.0}`, 400},
		{`{"bench":"pr","binder":"lopass","alpha":0.5}`, 400},
		{`{"bench":"pr","arch":"k9"}`, 400},
		{`not json`, 400},
		{`{"bench":"pr","unknown_field":1}`, 400},
	} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/bind", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("bind %s: got %d (%s), want %d", tc.body, resp.StatusCode, body, tc.want)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("bind %s: error body %s not structured", tc.body, body)
		}
	}

	ts.Close()
	fds()
	leak()
}

// TestShedsLoadWith429: with one execution slot and a one-deep queue,
// a burst of slow requests must shed the overflow immediately with
// 429 + Retry-After while the admitted ones complete.
func TestShedsLoadWith429(t *testing.T) {
	leak := checkGoroutines(t)
	fi := pipeline.NewFaultInjector(1, pipeline.FaultRule{Stage: flow.StageSim, PDelay: 1, Delay: 2 * time.Second})
	s := New(Options{Cfg: testConfig(), MaxConcurrent: 1, MaxQueue: 1, Injector: fi})
	ts := httptest.NewServer(s.Handler())

	benches := []string{"pr", "wang", "mcm", "dir", "honda"}
	codes := make([]int, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/bind", fmt.Sprintf(`{"bench":%q}`, b))
			codes[i] = resp.StatusCode
			if resp.StatusCode == 429 && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}()
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case 200:
			ok++
		case 429:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	// 1 running + 1 queued may pass; everything else must shed. Exact
	// counts depend on arrival interleaving, but overflow is certain.
	if ok == 0 || shed < len(benches)-2 {
		t.Fatalf("codes %v: want some 200s and >=%d 429s", codes, len(benches)-2)
	}

	var st Statsz
	resp, body := func() (*http.Response, []byte) {
		r, err := ts.Client().Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r, buf.Bytes()
	}()
	if resp.StatusCode != 200 || json.Unmarshal(body, &st) != nil {
		t.Fatalf("statsz: %d %s", resp.StatusCode, body)
	}
	if int(st.Shed) != shed || st.InFlight != 0 {
		t.Fatalf("statsz %+v disagrees with observed shed=%d", st, shed)
	}

	ts.Close()
	leak()
}

// TestDeadlineExpiryIs504: a request whose deadline expires inside the
// pipeline (injected stall) maps to 504, and the stalled work unwinds
// without leaking goroutines.
func TestDeadlineExpiryIs504(t *testing.T) {
	leak := checkGoroutines(t)
	fi := pipeline.NewFaultInjector(1, pipeline.FaultRule{Stage: flow.StageSim, PDelay: 1, Delay: time.Minute})
	s := New(Options{Cfg: testConfig(), Injector: fi})
	ts := httptest.NewServer(s.Handler())

	start := time.Now()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/bind", `{"bench":"pr","timeout_ms":300}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled bind: %d %s, want 504", resp.StatusCode, body)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("deadline took %v to fire", e)
	}
	ts.Close()
	leak()
}

// TestStreamingBind: NDJSON responses carry per-stage span events
// before the final result event, and an injected failure surfaces as a
// structured error event on the committed stream.
func TestStreamingBind(t *testing.T) {
	leak := checkGoroutines(t)
	s := New(Options{Cfg: testConfig()})
	ts := httptest.NewServer(s.Handler())

	resp, err := ts.Client().Post(ts.URL+"/v1/bind", "application/json",
		strings.NewReader(`{"bench":"pr","stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q", ct)
	}
	var spans int
	var last streamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Type == "span" {
			spans++
		}
		last = ev
	}
	resp.Body.Close()
	if spans == 0 {
		t.Fatal("stream carried no span events")
	}
	if last.Type != "result" || last.Result == nil || last.Result.PowerMW <= 0 {
		t.Fatalf("stream did not end in a result: %+v", last)
	}

	// Failure path: injected stage error becomes an error event.
	fi := pipeline.NewFaultInjector(1, pipeline.FaultRule{Stage: flow.StageMap, PError: 1})
	s2 := New(Options{Cfg: testConfig(), Injector: fi})
	ts2 := httptest.NewServer(s2.Handler())
	resp2, err := ts2.Client().Post(ts2.URL+"/v1/bind", "application/json",
		strings.NewReader(`{"bench":"wang","stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var sawError bool
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var ev streamEvent
		json.Unmarshal(sc2.Bytes(), &ev)
		if ev.Type == "error" && ev.Error != "" {
			sawError = true
		}
	}
	resp2.Body.Close()
	if !sawError {
		t.Fatal("injected failure produced no error event")
	}

	ts.Close()
	ts2.Close()
	leak()
}

// TestPanicIsolation: a panic escaping a handler is converted to a 500
// JSON error by the wrapper and the daemon keeps serving. The panic is
// provoked at the flow layer via the injector's panic fault — which
// stage recovery converts to a StageError (500) — and at the handler
// layer via a request the mux cannot route (405), proving the process
// survives both.
func TestPanicIsolation(t *testing.T) {
	leak := checkGoroutines(t)
	fi := pipeline.NewFaultInjector(1, pipeline.FaultRule{Stage: flow.StageBind, PPanic: 1})
	s := New(Options{Cfg: testConfig(), Injector: fi})
	ts := httptest.NewServer(s.Handler())

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/bind", `{"bench":"pr"}`)
	if resp.StatusCode != 500 {
		t.Fatalf("panicked bind: %d %s, want 500", resp.StatusCode, body)
	}
	var eb errorBody
	if json.Unmarshal(body, &eb) != nil || eb.Error == "" {
		t.Fatalf("panic error body %s not structured", body)
	}
	// Server must still be alive and serving.
	r, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || r.StatusCode != 200 {
		t.Fatalf("healthz after panic: %v %v", err, r)
	}
	r.Body.Close()

	ts.Close()
	leak()
}

// TestServeDrainsInFlight: cancelling Serve's context while a request
// is executing must let it finish (graceful drain), flush and close the
// store, and release the listener, goroutines, and fds.
func TestServeDrainsInFlight(t *testing.T) {
	leak, fds := checkGoroutines(t), checkFDs(t)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fi := pipeline.NewFaultInjector(1, pipeline.FaultRule{Stage: flow.StageSim, PDelay: 1, Delay: 500 * time.Millisecond})
	s := New(Options{Cfg: testConfig(), Store: st, Injector: fi, DrainTimeout: 30 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	client := &http.Client{}
	reqDone := make(chan int, 1)
	go func() {
		resp, err := client.Post(url+"/v1/bind", "application/json",
			strings.NewReader(`{"bench":"pr"}`))
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()

	// Let the request reach the stalled stage, then start the drain.
	time.Sleep(150 * time.Millisecond)
	cancel()

	if code := <-reqDone; code != 200 {
		t.Fatalf("in-flight request finished with %d, want 200 (drain must not kill it)", code)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// Serve closed the store: its artifacts are durable and its lock is
	// released — a restarted daemon can reopen and warm-start.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store locked or broken after drain: %v", err)
	}
	if st2.Len() == 0 {
		t.Fatal("drained store holds no artifacts")
	}
	st2.Close()

	client.CloseIdleConnections()
	fds()
	leak()
}

// TestHealthzDrainingIs503: once draining, the health endpoint flips to
// 503 so load balancers stop routing to the instance.
func TestHealthzDrainingIs503(t *testing.T) {
	s := New(Options{Cfg: testConfig()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	r, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || r.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, r)
	}
	r.Body.Close()
	s.draining.Store(true)
	r, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %v %v", err, r)
	}
	r.Body.Close()
}

// TestSessionSharingAcrossConfigs: requests with config overrides get
// derived sessions (visible in statsz), and repeated overrides reuse
// one session rather than deriving per request.
func TestSessionSharingAcrossConfigs(t *testing.T) {
	s := New(Options{Cfg: testConfig()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/bind", `{"bench":"pr","arch":"k6"}`)
		if resp.StatusCode != 200 {
			t.Fatalf("k6 bind: %d %s", resp.StatusCode, body)
		}
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	if n != 2 { // base + k6
		t.Fatalf("sessions = %d, want 2 (base + k6 override, reused)", n)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/flow"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// httpError carries an explicit status through the error return of a
// handler (bad requests, unknown benchmarks, ...).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{http.StatusNotFound, fmt.Sprintf(format, args...)}
}

type errorBody struct {
	Error string `json:"error"`
}

// writeError maps an error to its HTTP shape: explicit statuses pass
// through, overload is 429 + Retry-After, deadline expiry is 504,
// client disconnect is 499 (nginx's convention — the client is gone,
// but access logs should still distinguish it), everything else
// (StageErrors, recovered flow panics) is 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var he *httpError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, errOverload):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nolint: a write error here means the client is gone
}

// decodeBody strictly decodes a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data")
	}
	return nil
}

// configOverrides are the per-request session knobs shared by every
// flow endpoint. Zero values mean "the server's base configuration".
type configOverrides struct {
	Arch    string `json:"arch,omitempty"`
	Width   int    `json:"width,omitempty"`
	Vectors int    `json:"vectors,omitempty"`
}

func (o configOverrides) apply(base flow.Config) (flow.Config, error) {
	cfg := base
	if o.Arch != "" {
		t, ok := arch.ByName(o.Arch)
		if !ok {
			return cfg, badRequest("unknown arch %q (want k4, k6, or asic)", o.Arch)
		}
		cfg = cfg.WithArch(t)
	}
	if o.Width > 0 {
		cfg.Width = o.Width
	}
	if o.Vectors > 0 {
		cfg.Vectors = o.Vectors
	}
	return cfg.Normalize(), nil
}

// binderFor resolves a request's binder spec. Alpha applies to the
// hlpower binder only (default 0.5, the paper's headline setting);
// AlphaBinders' canonical naming keeps server runs cache-compatible
// with CLI alpha sweeps.
func binderFor(name string, alpha *float64) (flow.Binder, error) {
	switch name {
	case "", "hlpower":
		a := 0.5
		if alpha != nil {
			a = *alpha
		}
		if a < 0 || a > 1 {
			return flow.Binder{}, badRequest("alpha %v out of range [0,1]", a)
		}
		return flow.AlphaBinders([]float64{a})[0], nil
	case "lopass":
		if alpha != nil {
			return flow.Binder{}, badRequest("alpha applies to the hlpower binder only")
		}
		return flow.BinderLOPASS, nil
	default:
		return flow.Binder{}, badRequest("unknown binder %q (want lopass or hlpower)", name)
	}
}

// BindRequest is the POST /v1/bind body: one (benchmark, binder) run.
type BindRequest struct {
	configOverrides
	Bench  string   `json:"bench"`
	Binder string   `json:"binder,omitempty"` // "hlpower" (default) or "lopass"
	Alpha  *float64 `json:"alpha,omitempty"`  // hlpower's Eq. 4 weighting (default 0.5)
	// TimeoutMS bounds this request (0 = server default; capped at the
	// server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream switches the response to NDJSON: one {"type":"span"} event
	// per pipeline stage as it completes, then a final {"type":"result"}
	// or {"type":"error"} event.
	Stream bool `json:"stream,omitempty"`
}

// BindResult is the bind endpoint's result payload (also the "result"
// stream event's body).
type BindResult struct {
	Bench  string `json:"bench"`
	Binder string `json:"binder"`
	// Warm reports whether the run was already complete in the session
	// cache when the request arrived (a durable-store hit that replays
	// the whole run also reports warm=false on its first demand — the
	// store serves stage artifacts, not liveness).
	Warm        bool    `json:"warm"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	PowerMW     float64 `json:"power_mw"`
	GlitchShare float64 `json:"glitch_share"`
	ClockNs     float64 `json:"clock_ns"`
	LUTs        int     `json:"luts"`
	Depth       int     `json:"depth"`
	MuxLen      int     `json:"mux_len"`
	Regs        int     `json:"regs"`
	Stages      int     `json:"stages"` // pipeline spans recorded for this run
}

func bindResult(p workload.Profile, b flow.Binder, r *flow.Result, warm bool, elapsed time.Duration) BindResult {
	return BindResult{
		Bench:       p.Name,
		Binder:      b.Name,
		Warm:        warm,
		ElapsedMS:   float64(elapsed.Nanoseconds()) / 1e6,
		PowerMW:     r.Power.DynamicPowerMW,
		GlitchShare: r.Power.GlitchShare,
		ClockNs:     r.Power.ClockPeriodNs,
		LUTs:        r.LUTs,
		Depth:       r.Depth,
		MuxLen:      r.FUMux.Length,
		Regs:        r.NumRegs,
		Stages:      len(r.StageTrace),
	}
}

func (s *Server) handleBind(w http.ResponseWriter, r *http.Request) error {
	var req BindRequest
	if err := decodeBody(w, r, &req); err != nil {
		return err
	}
	p, ok := workload.ByName(req.Bench)
	if !ok {
		return notFound("unknown benchmark %q", req.Bench)
	}
	b, err := binderFor(req.Binder, req.Alpha)
	if err != nil {
		return err
	}
	se, err := s.session(req.configOverrides)
	if err != nil {
		return err
	}
	ctx, cancel := s.reqContext(r, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	s.requests.Add(1)

	_, warm := se.Peek(p, b)
	if warm {
		s.warmHits.Add(1)
	}
	start := time.Now()
	if !req.Stream {
		res, err := se.Run(ctx, p, b)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, bindResult(p, b, res, warm, time.Since(start)))
		return nil
	}
	return s.streamBind(w, ctx, se, p, b, warm, start)
}

// streamEvent is one NDJSON line of a streaming bind response.
type streamEvent struct {
	Type   string         `json:"type"` // "span", "result", "error"
	Span   *pipeline.Span `json:"span,omitempty"`
	Result *BindResult    `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// streamBind runs the pair with a live trace, emitting one NDJSON event
// per completed stage. The 200 status is committed before the run
// starts, so failures surface as a final "error" event, not a status.
func (s *Server) streamBind(w http.ResponseWriter, ctx context.Context, se *flow.Session, p workload.Profile, b flow.Binder, warm bool, start time.Time) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mu sync.Mutex
	emit := func(ev streamEvent) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(ev)
		if fl != nil {
			fl.Flush()
		}
	}
	tr := new(pipeline.Trace)
	// Stage observers fire concurrently from worker goroutines; emit
	// serializes them onto the response.
	tr.SetObserver(func(sp pipeline.Span) {
		emit(streamEvent{Type: "span", Span: &sp})
	})
	res, err := se.RunTraced(ctx, p, b, tr)
	if err != nil {
		emit(streamEvent{Type: "error", Error: err.Error()})
		return nil
	}
	br := bindResult(p, b, res, warm, time.Since(start))
	emit(streamEvent{Type: "result", Result: &br})
	return nil
}

// SweepRequest is the POST /v1/sweep body: the full benchmark suite
// crossed with a binder matrix. With Alphas set the matrix is HLPower
// at each alpha; otherwise it is the paper's standard three binders.
type SweepRequest struct {
	configOverrides
	Alphas    []float64 `json:"alphas,omitempty"`
	KeepGoing bool      `json:"keepgoing,omitempty"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// SweepPair is one (benchmark, binder) outcome of a sweep response.
type SweepPair struct {
	Bench   string  `json:"bench"`
	Binder  string  `json:"binder"`
	OK      bool    `json:"ok"`
	Error   string  `json:"error,omitempty"`
	PowerMW float64 `json:"power_mw,omitempty"`
	LUTs    int     `json:"luts,omitempty"`
	Depth   int     `json:"depth,omitempty"`
}

// SweepResponse summarizes a sweep: per-pair outcomes plus counts.
type SweepResponse struct {
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Pairs     []SweepPair `json:"pairs"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		return err
	}
	var binders []flow.Binder
	if len(req.Alphas) > 0 {
		for _, a := range req.Alphas {
			if a < 0 || a > 1 {
				return badRequest("alpha %v out of range [0,1]", a)
			}
		}
		binders = flow.AlphaBinders(req.Alphas)
	}
	se, err := s.session(req.configOverrides)
	if err != nil {
		return err
	}
	ctx, cancel := s.reqContext(r, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	s.requests.Add(1)

	start := time.Now()
	rep, err := se.Sweep(ctx, flow.SweepOptions{Binders: binders, KeepGoing: req.KeepGoing})
	if rep == nil {
		return err
	}
	// A failed pair under keep-going is data, not a request failure;
	// without keep-going a failure still returns the partial report so
	// the client sees which pair broke. Only a wholly-failed sweep
	// (e.g. deadline hit before anything completed) maps to an error
	// status.
	if err != nil && rep.Completed() == 0 {
		return err
	}
	resp := SweepResponse{
		Completed: rep.Completed(),
		Failed:    len(rep.Failures()),
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		Pairs:     make([]SweepPair, len(rep.Pairs)),
	}
	for i, ps := range rep.Pairs {
		sp := SweepPair{Bench: ps.Bench, Binder: ps.Binder, OK: ps.OK()}
		if ps.Failure != nil {
			sp.Error = ps.Failure.Cause
		} else if ps.Result != nil {
			sp.PowerMW = ps.Result.Power.DynamicPowerMW
			sp.LUTs = ps.Result.LUTs
			sp.Depth = ps.Result.Depth
		}
		resp.Pairs[i] = sp
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// ArchSweepRequest is the POST /v1/archsweep body: the two-binder
// comparison across target architectures (default: all presets).
type ArchSweepRequest struct {
	configOverrides
	Targets   []string `json:"targets,omitempty"` // e.g. ["k4","k6","asic"]
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// ArchSweepResponse wraps the flow's cross-architecture rows.
type ArchSweepResponse struct {
	ElapsedMS float64             `json:"elapsed_ms"`
	Rows      []flow.ArchSweepRow `json:"rows"`
}

func (s *Server) handleArchSweep(w http.ResponseWriter, r *http.Request) error {
	var req ArchSweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		return err
	}
	targets := arch.Presets()
	if len(req.Targets) > 0 {
		targets = targets[:0:0]
		for _, name := range req.Targets {
			t, ok := arch.ByName(name)
			if !ok {
				return badRequest("unknown arch %q (want k4, k6, or asic)", name)
			}
			targets = append(targets, t)
		}
	}
	se, err := s.session(req.configOverrides)
	if err != nil {
		return err
	}
	ctx, cancel := s.reqContext(r, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	s.requests.Add(1)

	start := time.Now()
	rows, err := flow.ArchSweepData(ctx, se, targets)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, ArchSweepResponse{
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		Rows:      rows,
	})
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return nil
	}
	io.WriteString(w, "ok\n")
	return nil
}

// Statsz is the GET /statsz payload: admission, cache, and store
// counters for operators and the CI smoke test.
type Statsz struct {
	InFlight int64 `json:"in_flight"` // running + queued flow requests
	Requests int64 `json:"requests"`  // admitted flow requests
	Shed     int64 `json:"shed"`      // 429 responses
	Panics   int64 `json:"panics"`    // handler panics recovered
	WarmHits int64 `json:"warm_hits"` // responses served warm
	Sessions int   `json:"sessions"`  // distinct configurations derived
	Draining bool  `json:"draining"`

	Stages map[string]pipeline.Stats `json:"stages"`
	// StageWallclock is the base session's cumulative per-stage
	// wall-clock: demands, cache hits, total and compute nanoseconds —
	// where a long-lived daemon's pipeline time has actually gone.
	StageWallclock []flow.StageWallclock `json:"stage_wallclock,omitempty"`
	Store          *StoreStatsz          `json:"store,omitempty"`

	// Ingest reports the streaming-ingestion batcher: batches < requests
	// under concurrent load means submissions actually shared admission
	// slots.
	Ingest IngestStatsz `json:"ingest"`
	// BindStats surfaces the binding engine's per-binding reports —
	// including the edge-store mode and memory accounting — for every
	// HLPower binding the shared stage cache holds. Per-iteration detail
	// is trimmed (it can run to thousands of rounds on scale graphs).
	BindStats []flow.BindStat `json:"bind_stats,omitempty"`
}

// IngestStatsz is the /statsz ingest section.
type IngestStatsz struct {
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
	MaxBatch int64 `json:"max_batch"`
}

// StoreStatsz mirrors store.Stats with JSON names.
type StoreStatsz struct {
	Hits        int   `json:"hits"`
	Misses      int   `json:"misses"`
	Quarantined int   `json:"quarantined"`
	Puts        int   `json:"puts"`
	PutSkips    int   `json:"put_skips"`
	PutErrors   int   `json:"put_errors"`
	Evicted     int   `json:"evicted"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) error {
	s.mu.Lock()
	nSessions := len(s.sessions)
	s.mu.Unlock()
	st := Statsz{
		InFlight: s.load.Load(),
		Requests: s.requests.Load(),
		Shed:     s.shed.Load(),
		Panics:   s.panics.Load(),
		WarmHits: s.warmHits.Load(),
		Sessions: nSessions,
		Draining:       s.draining.Load(),
		Stages:         s.base.StageStats(),
		StageWallclock: s.base.StageWallclock(),
		Ingest: IngestStatsz{
			Requests: s.ingestRequests.Load(),
			Batches:  s.ingestBatches.Load(),
			MaxBatch: s.ingestMaxBatch.Load(),
		},
	}
	st.BindStats = s.base.BindStats()
	for i, bs := range st.BindStats {
		if bs.Report != nil && len(bs.Report.Iters) > 0 {
			r := *bs.Report
			r.Iters = nil
			st.BindStats[i].Report = &r
		}
	}
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		st.Store = &StoreStatsz{
			Hits: ss.Hits, Misses: ss.Misses, Quarantined: ss.Quarantined,
			Puts: ss.Puts, PutSkips: ss.PutSkips, PutErrors: ss.PutErrors,
			Evicted: ss.Evicted, Entries: ss.Entries, Bytes: ss.Bytes,
		}
	}
	writeJSON(w, http.StatusOK, st)
	return nil
}

package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/cdfg"
	"repro/internal/flow"
)

// Streaming ingestion: POST /v1/ingest accepts one small CDFG per
// request, described inline as JSON, and binds it through the shared
// flow session. The scenario is many small graphs arriving
// continuously — an HLS front end emitting kernels as it lowers them —
// where admitting every request individually would burn an admission
// slot (and a queue position) per tiny graph. Requests are therefore
// batched: the first arrival becomes the batch leader, waits
// BatchWindow for peers to accumulate, then processes up to BatchMax
// submissions under a single admission slot. Identical graphs in one
// batch (and across batches) collapse in the session's
// content-addressed run cache, so a stream with duplicates does the
// expensive work once.

// IngestOp is one operation of an inline CDFG: kind "add", "sub", or
// "mult", args naming two prior inputs or ops.
type IngestOp struct {
	Name string   `json:"name"`
	Kind string   `json:"kind"`
	Args []string `json:"args"`
}

// IngestRC is the inline resource constraint.
type IngestRC struct {
	Add  int `json:"add"`
	Mult int `json:"mult"`
}

// IngestRequest is the POST /v1/ingest body: an inline CDFG plus the
// binder to run. Graphs share the server's base configuration unless
// overridden.
type IngestRequest struct {
	configOverrides
	Name    string     `json:"name"`
	Inputs  []string   `json:"inputs"`
	Ops     []IngestOp `json:"ops"`
	Outputs []string   `json:"outputs"`
	RC      IngestRC   `json:"rc"`
	Binder  string     `json:"binder,omitempty"` // "hlpower" (default) or "lopass"
	Alpha   *float64   `json:"alpha,omitempty"`
	// TimeoutMS bounds this submission end to end, including the batch
	// wait (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// IngestResult is the ingest endpoint's response payload.
type IngestResult struct {
	Name string `json:"name"`
	// Batch is the number of submissions the request's batch carried —
	// >1 means the request shared its admission slot with peers.
	Batch     int     `json:"batch"`
	ElapsedMS float64 `json:"elapsed_ms"`
	PowerMW   float64 `json:"power_mw"`
	LUTs      int     `json:"luts"`
	Depth     int     `json:"depth"`
	MuxLen    int     `json:"mux_len"`
	Regs      int     `json:"regs"`
}

// buildIngestGraph lowers the inline spec to a validated CDFG.
func buildIngestGraph(req *IngestRequest) (*cdfg.Graph, error) {
	if req.Name == "" {
		return nil, badRequest("ingest: name is required")
	}
	if len(req.Ops) == 0 {
		return nil, badRequest("ingest: at least one op is required")
	}
	g := cdfg.NewGraph(req.Name)
	ids := make(map[string]int, len(req.Inputs)+len(req.Ops))
	for _, in := range req.Inputs {
		if _, dup := ids[in]; dup {
			return nil, badRequest("ingest: duplicate name %q", in)
		}
		ids[in] = g.AddInput(in)
	}
	for _, op := range req.Ops {
		var kind cdfg.NodeKind
		switch op.Kind {
		case "add":
			kind = cdfg.KindAdd
		case "sub":
			kind = cdfg.KindSub
		case "mult":
			kind = cdfg.KindMult
		default:
			return nil, badRequest("ingest: op %q: unknown kind %q (want add, sub, or mult)", op.Name, op.Kind)
		}
		if len(op.Args) != 2 {
			return nil, badRequest("ingest: op %q: want exactly 2 args, got %d", op.Name, len(op.Args))
		}
		if _, dup := ids[op.Name]; dup {
			return nil, badRequest("ingest: duplicate name %q", op.Name)
		}
		a, ok := ids[op.Args[0]]
		if !ok {
			return nil, badRequest("ingest: op %q: unknown arg %q", op.Name, op.Args[0])
		}
		b, ok := ids[op.Args[1]]
		if !ok {
			return nil, badRequest("ingest: op %q: unknown arg %q", op.Name, op.Args[1])
		}
		ids[op.Name] = g.AddOp(kind, op.Name, a, b)
	}
	for _, out := range req.Outputs {
		id, ok := ids[out]
		if !ok {
			return nil, badRequest("ingest: unknown output %q", out)
		}
		g.MarkOutput(id)
	}
	if err := g.Validate(); err != nil {
		return nil, badRequest("ingest: invalid graph: %v", err)
	}
	return g, nil
}

// ingestItem is one submission waiting in the batcher.
type ingestItem struct {
	g    *cdfg.Graph
	rc   cdfg.ResourceConstraint
	b    flow.Binder
	se   *flow.Session
	ctx  context.Context
	done chan ingestOut // buffered(1): the leader never blocks on delivery
}

type ingestOut struct {
	res   *flow.Result
	batch int
	err   error
}

// batcher accumulates ingest submissions and elects the first submitter
// of an idle batcher as leader. The leader loops: sleep one window,
// take up to max pending submissions, process them as one batch, repeat
// until the queue drains, then abdicate.
type batcher struct {
	window time.Duration
	max    int

	mu      sync.Mutex
	pending []*ingestItem
	leading bool
}

// submit enqueues an item, starting a leader if none is active, and
// waits for the item's outcome (or its context).
func (s *Server) submit(it *ingestItem) ingestOut {
	b := &s.batch
	b.mu.Lock()
	b.pending = append(b.pending, it)
	if !b.leading {
		b.leading = true
		go s.lead()
	}
	b.mu.Unlock()
	select {
	case out := <-it.done:
		return out
	case <-it.ctx.Done():
		// The leader may still process the item; its buffered done send
		// is simply dropped.
		return ingestOut{err: it.ctx.Err()}
	}
}

// lead is the batch-leader loop.
func (s *Server) lead() {
	b := &s.batch
	for {
		time.Sleep(b.window)
		b.mu.Lock()
		n := len(b.pending)
		if n == 0 {
			b.leading = false
			b.mu.Unlock()
			return
		}
		if n > b.max {
			n = b.max
		}
		batch := b.pending[:n:n]
		b.pending = append([]*ingestItem(nil), b.pending[n:]...)
		b.mu.Unlock()
		s.processBatch(batch)
	}
}

// processBatch runs one batch under a single admission slot.
func (s *Server) processBatch(items []*ingestItem) {
	s.ingestBatches.Add(1)
	for {
		cur := s.ingestMaxBatch.Load()
		if int64(len(items)) <= cur || s.ingestMaxBatch.CompareAndSwap(cur, int64(len(items))) {
			break
		}
	}
	release, err := s.acquire(context.Background())
	if err != nil {
		// Queue full: the whole batch sheds as one unit.
		for _, it := range items {
			it.done <- ingestOut{err: err, batch: len(items)}
		}
		return
	}
	defer release()
	s.requests.Add(1)
	for _, it := range items {
		if it.ctx.Err() != nil {
			it.done <- ingestOut{err: it.ctx.Err(), batch: len(items)}
			continue
		}
		res, err := it.se.RunGraphCtx(it.ctx, it.g, it.g.Name, it.rc, it.b)
		it.done <- ingestOut{res: res, batch: len(items), err: err}
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) error {
	var req IngestRequest
	if err := decodeBody(w, r, &req); err != nil {
		return err
	}
	g, err := buildIngestGraph(&req)
	if err != nil {
		return err
	}
	if req.RC.Add < 1 || req.RC.Mult < 1 {
		return badRequest("ingest: rc.add and rc.mult must be >= 1")
	}
	b, err := binderFor(req.Binder, req.Alpha)
	if err != nil {
		return err
	}
	se, err := s.session(req.configOverrides)
	if err != nil {
		return err
	}
	ctx, cancel := s.reqContext(r, req.TimeoutMS)
	defer cancel()
	s.ingestRequests.Add(1)

	start := time.Now()
	out := s.submit(&ingestItem{
		g: g, rc: cdfg.ResourceConstraint{Add: req.RC.Add, Mult: req.RC.Mult},
		b: b, se: se, ctx: ctx,
		done: make(chan ingestOut, 1),
	})
	if out.err != nil {
		return out.err
	}
	res := IngestResult{
		Name:      req.Name,
		Batch:     out.batch,
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		PowerMW:   out.res.Power.DynamicPowerMW,
		LUTs:      out.res.LUTs,
		Depth:     out.res.Depth,
		MuxLen:    out.res.FUMux.Length,
		Regs:      out.res.NumRegs,
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}

// Package server implements hlpowerd: the HLPower flow exposed as an
// HTTP/JSON service over a shared flow.Session and (optionally) a
// durable artifact store. The design goals are the daemon trio the
// paper's batch CLI cannot provide:
//
//   - Isolation: every request runs under its own deadline, its
//     failures (including recovered panics) become structured JSON
//     errors, and one bad request never takes down the process.
//   - Sharing: all requests share one stage-artifact cache (and one
//     durable store), so concurrent demands for the same artifact
//     singleflight into one computation and a restarted daemon
//     warm-starts from disk.
//   - Backpressure: admission is bounded by MaxConcurrent running plus
//     MaxQueue waiting requests; beyond that the server sheds load with
//     429 + Retry-After instead of queueing without bound.
//
// Serve owns the lifecycle: on context cancellation (hlpowerd wires
// SIGINT/SIGTERM via sigctx) it stops accepting connections, drains
// in-flight requests for up to DrainTimeout, then flushes and closes
// the store — so an orderly shutdown never tears a store entry.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flow"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// Options configures a Server. The zero value of every field is usable:
// defaults are filled in by New.
type Options struct {
	// Cfg is the base flow configuration; per-request arch/width/vectors
	// overrides derive sessions from it (sharing its stage cache). New
	// normalizes it.
	Cfg flow.Config
	// Store, when non-nil, durably backs every session's caches. Serve
	// takes ownership on the drain path: it flushes and closes the
	// store after the last in-flight request finishes.
	Store *store.Store
	// MaxConcurrent bounds requests executing the flow at once
	// (0 = GOMAXPROCS). Health and stats endpoints are not admitted
	// against it.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot
	// (0 = 2×MaxConcurrent). A request arriving with the queue full is
	// shed with 429.
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the request body
	// names none (0 = 2m). MaxTimeout caps requested deadlines
	// (0 = 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds the graceful-shutdown wait for in-flight
	// requests (0 = 30s); past it connections are force-closed.
	DrainTimeout time.Duration
	// Jobs is the intra-request worker count for sweep fan-out
	// (Session.Jobs; 0 = GOMAXPROCS).
	Jobs int
	// BatchWindow is how long an ingest batch leader waits for peer
	// submissions before processing (0 = 25ms). BatchMax bounds the
	// submissions one batch carries (0 = 16). See ingest.go.
	BatchWindow time.Duration
	BatchMax    int
	// Injector, when non-nil, arms deterministic fault injection on
	// every request context — the lifecycle tests' lever for stuck
	// stages, panics, and disk faults.
	Injector *pipeline.FaultInjector
	// Logf receives operational logs (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the hlpowerd HTTP service. Create with New; it is safe for
// concurrent use by the HTTP stack.
type Server struct {
	opts Options
	base *flow.Session
	mux  *http.ServeMux

	// sem holds MaxConcurrent execution slots; load counts running plus
	// queued requests and is bounded by MaxConcurrent+MaxQueue.
	sem  chan struct{}
	load atomic.Int64

	mu       sync.Mutex
	sessions map[string]*flow.Session // Config.Fingerprint() → derived session

	draining atomic.Bool
	requests atomic.Int64 // admitted flow requests
	shed     atomic.Int64 // 429s
	panics   atomic.Int64 // handler panics recovered
	warmHits atomic.Int64 // responses served from a completed run cache entry

	// batch is the streaming-ingestion batcher (ingest.go); the counters
	// below feed /statsz so operators — and the CI smoke test — can see
	// batching actually happen (batches < requests under load).
	batch          batcher
	ingestRequests atomic.Int64 // ingest submissions received
	ingestBatches  atomic.Int64 // batches processed
	ingestMaxBatch atomic.Int64 // largest batch observed
}

// New builds a Server over opts (filling defaults) and wires its routes.
func New(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 2 * opts.MaxConcurrent
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = 2 * time.Minute
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 10 * time.Minute
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	if opts.BatchWindow <= 0 {
		opts.BatchWindow = 25 * time.Millisecond
	}
	if opts.BatchMax <= 0 {
		opts.BatchMax = 16
	}
	base := flow.NewSession(opts.Cfg)
	base.Jobs = opts.Jobs
	if opts.Store != nil {
		base.AttachStore(opts.Store)
	}
	s := &Server{
		opts:     opts,
		base:     base,
		sem:      make(chan struct{}, opts.MaxConcurrent),
		sessions: map[string]*flow.Session{base.Cfg.Fingerprint(): base},
		batch:    batcher{window: opts.BatchWindow, max: opts.BatchMax},
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/bind", s.wrap(s.handleBind))
	s.mux.Handle("POST /v1/sweep", s.wrap(s.handleSweep))
	s.mux.Handle("POST /v1/archsweep", s.wrap(s.handleArchSweep))
	s.mux.Handle("POST /v1/ingest", s.wrap(s.handleIngest))
	s.mux.Handle("GET /healthz", s.wrap(s.handleHealthz))
	s.mux.Handle("GET /statsz", s.wrap(s.handleStatsz))
	return s
}

// Handler returns the server's HTTP handler (for tests and embedding;
// Serve uses it too).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then drains:
// in-flight requests get up to DrainTimeout to finish (their own
// deadlines still apply), stragglers are force-closed, and the store —
// if one was attached — is flushed and closed last, so every artifact
// computed by a drained request is durable before Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	var serveErr error
	select {
	case serveErr = <-errCh:
		// Listener failure; nothing in flight to drain via Shutdown,
		// but still close the store below.
	case <-ctx.Done():
		s.draining.Store(true)
		s.logf("draining: waiting up to %v for in-flight requests", s.opts.DrainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		err := srv.Shutdown(dctx)
		cancel()
		if err != nil {
			// Drain deadline expired: abandon stragglers. Their request
			// contexts cancel with the connections, so the pipeline
			// winds down cooperatively.
			s.logf("drain timed out: force-closing connections")
			srv.Close()
			serveErr = fmt.Errorf("server: drain: %w", err)
		}
		<-errCh // Serve has returned ErrServerClosed
	}
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	if s.opts.Store != nil {
		if err := s.opts.Store.Close(); err != nil && serveErr == nil {
			serveErr = fmt.Errorf("server: store close: %w", err)
		}
	}
	return serveErr
}

// session resolves the flow.Session for a request's configuration
// overrides, deriving (and caching) one per distinct configuration.
// Derived sessions share the base session's stage cache — and the
// durable store, when attached — so overlapping configurations share
// artifacts exactly as CLI sweeps do.
func (s *Server) session(o configOverrides) (*flow.Session, error) {
	cfg, err := o.apply(s.base.Cfg)
	if err != nil {
		return nil, err
	}
	fp := cfg.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if se, ok := s.sessions[fp]; ok {
		return se, nil
	}
	se := s.base.Derive(cfg)
	se.Jobs = s.opts.Jobs
	if s.opts.Store != nil {
		se.AttachStore(s.opts.Store)
	}
	s.sessions[fp] = se
	return se, nil
}

// errOverload marks a request shed by admission control.
var errOverload = errors.New("server overloaded: admission queue full")

// acquire admits a request: it claims a queue position, then waits for
// one of the MaxConcurrent execution slots. With the queue full the
// request is shed immediately (429); a context expiring in the queue
// abandons the wait. The returned release frees both.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	if s.load.Add(1) > int64(s.opts.MaxConcurrent+s.opts.MaxQueue) {
		s.load.Add(-1)
		s.shed.Add(1)
		return nil, errOverload
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; s.load.Add(-1) }, nil
	case <-ctx.Done():
		s.load.Add(-1)
		return nil, ctx.Err()
	}
}

// timeout resolves a request's deadline: the requested duration clamped
// to MaxTimeout, or DefaultTimeout when unspecified.
func (s *Server) timeout(requestedMS int64) time.Duration {
	d := s.opts.DefaultTimeout
	if requestedMS > 0 {
		d = time.Duration(requestedMS) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

// reqContext derives the execution context for an admitted request:
// the client's context (cancelled on disconnect and on force-close)
// bounded by the resolved deadline, carrying the server's fault
// injector when one is armed.
func (s *Server) reqContext(r *http.Request, requestedMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(requestedMS))
	if s.opts.Injector != nil {
		ctx = pipeline.WithInjector(ctx, s.opts.Injector)
	}
	return ctx, cancel
}

// wrap adapts an error-returning handler: errors map to JSON responses
// with the right status (writeError), and a panic escaping the handler
// — the per-request isolation backstop; flow-level panics are already
// recovered at stage boundaries — becomes a 500 instead of killing the
// daemon.
func (s *Server) wrap(h func(w http.ResponseWriter, r *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.logf("panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: fmt.Sprintf("internal panic: %v", rec)})
			}
		}()
		if err := h(w, r); err != nil {
			s.writeError(w, err)
		}
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

package regbind

import (
	"testing"

	"repro/internal/cdfg"
)

// affinityCase builds a graph where two disjoint-lifetime values are
// both read by left ports of adds in different steps — co-locating them
// lets a downstream binder share one mux input.
func affinityCase(t *testing.T) (*cdfg.Graph, *cdfg.Schedule) {
	t.Helper()
	g := cdfg.NewGraph("aff")
	a := g.AddInput("a")
	b := g.AddInput("b")
	// v1 = a+b (step 1), read at step 2; v2 = a*b... keep one class:
	v1 := g.AddOp(cdfg.KindAdd, "v1", a, b)
	u1 := g.AddOp(cdfg.KindAdd, "u1", v1, b) // reads v1 (step 2)
	v2 := g.AddOp(cdfg.KindAdd, "v2", u1, b) // born step 3
	u2 := g.AddOp(cdfg.KindAdd, "u2", v2, b) // reads v2 (step 4)
	g.MarkOutput(u2)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestBindOptWithSwapProducesValidBinding(t *testing.T) {
	g, s := affinityCase(t)
	swap := make([]bool, len(g.Nodes))
	rb, err := BindOpt(g, s, Options{Swap: swap})
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityCoLocatesSamePortReaders(t *testing.T) {
	g, s := affinityCase(t)
	swap := make([]bool, len(g.Nodes)) // no swaps: args[0] -> left port
	rb, err := BindOpt(g, s, Options{Swap: swap})
	if err != nil {
		t.Fatal(err)
	}
	// v1 and v2 have disjoint lifetimes and both feed left ports of add
	// ops in different steps: affinity weighting must share one register.
	v1, _ := findOp(g, "v1")
	v2, _ := findOp(g, "v2")
	if rb.Reg[v1] != rb.Reg[v2] {
		t.Fatalf("affinity should co-locate v1 (r%d) and v2 (r%d)", rb.Reg[v1], rb.Reg[v2])
	}
}

func findOp(g *cdfg.Graph, name string) (int, bool) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return -1, false
}

func TestAffinityRespectsLifetimeConflicts(t *testing.T) {
	// Affinity never overrides correctness: overlapping values must land
	// in different registers no matter how similar their readers are.
	g := cdfg.NewGraph("conflict")
	a := g.AddInput("a")
	b := g.AddInput("b")
	v1 := g.AddOp(cdfg.KindAdd, "v1", a, b)
	v2 := g.AddOp(cdfg.KindAdd, "v2", b, a)
	sum := g.AddOp(cdfg.KindAdd, "sum", v1, v2) // both alive until here
	g.MarkOutput(sum)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 2, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	swap := make([]bool, len(g.Nodes))
	rb, err := BindOpt(g, s, Options{Swap: swap})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Reg[v1] == rb.Reg[v2] {
		t.Fatal("overlapping values share a register")
	}
	if err := rb.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCycleLifetimeBinding(t *testing.T) {
	// Operand of a 2-cycle mult must stay alive through its occupation;
	// the binding must respect the extended lifetime.
	g := cdfg.NewGraph("mc")
	a := g.AddInput("a")
	b := g.AddInput("b")
	v := g.AddOp(cdfg.KindAdd, "v", a, b)
	m := g.AddOp(cdfg.KindMult, "m", v, b)
	w := g.AddOp(cdfg.KindAdd, "w", m, b)
	g.MarkOutput(w)
	lib := cdfg.Library{AddLatency: 1, MultLatency: 3}
	s, err := cdfg.ListScheduleLat(g, cdfg.ResourceConstraint{Add: 1, Mult: 1}, lib)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	lt := cdfg.Lifetimes(g, s)
	if lt[v].Death < s.Completion(g, m) {
		t.Fatalf("operand lifetime %+v should reach the mult completion %d", lt[v], s.Completion(g, m))
	}
}

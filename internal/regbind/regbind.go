// Package regbind implements register allocation and binding in the
// manner of Huang et al.'s bipartite-matching datapath allocator [11],
// as the paper's §5.1 prescribes: the register count is the maximum
// number of simultaneously live variables over all control steps;
// variables are then bound cluster by cluster in ascending birth-time
// order by solving a weighted bipartite graph between the variables born
// at each step and the registers free at that step. Both binders
// (HLPower and the LOPASS baseline) consume the same register binding,
// exactly as the paper's experimental setup requires.
package regbind

import (
	"fmt"
	"sort"

	"repro/internal/cdfg"
	"repro/internal/matching"
)

// Binding maps each CDFG value to a register.
type Binding struct {
	// Reg[id] is the register index holding value id, or -1 if the value
	// never crosses a step boundary and needs no register.
	Reg []int
	// NumRegs is the number of allocated registers.
	NumRegs int
	// Lifetimes caches the lifetime analysis the binding was built from.
	Lifetimes []cdfg.Lifetime
}

// Options tunes the bipartite edge weights.
type Options struct {
	// Swap is the operation port assignment (see binding.
	// RandomPortAssignment): Swap[op] means the op's second argument
	// feeds the left FU port. When set, register binding uses Huang et
	// al.'s interconnect-affinity weighting: a variable prefers the
	// register whose previous values are read by operations of the same
	// class at the same port in other control steps — readers that a
	// downstream FU binder can merge, collapsing the port multiplexer
	// input to a single register. Nil falls back to idle-time packing.
	Swap []bool
}

// Bind allocates and binds registers for the scheduled graph with
// default (idle-time packing) weights.
func Bind(g *cdfg.Graph, s *cdfg.Schedule) (*Binding, error) {
	return BindOpt(g, s, Options{})
}

// readerKey identifies how a stored value is consumed: the reading
// operation's FU class, the port it reads on, and its control step.
type readerKey struct {
	mult bool // FU class (false = add class)
	left bool // port
	step int
}

// readers lists the (class, port, step) triples of every consumer of v.
func readers(g *cdfg.Graph, s *cdfg.Schedule, swap []bool, consumers [][]int, v int) []readerKey {
	var out []readerKey
	for _, c := range consumers[v] {
		n := g.Nodes[c]
		// Determine which port(s) of c read v under the port assignment.
		a0, a1 := n.Args[0], n.Args[1]
		if swap != nil && swap[c] {
			a0, a1 = a1, a0
		}
		mult := n.Kind == cdfg.KindMult
		if a0 == v {
			out = append(out, readerKey{mult: mult, left: true, step: s.Step[c]})
		}
		if a1 == v {
			out = append(out, readerKey{mult: mult, left: false, step: s.Step[c]})
		}
	}
	return out
}

// affinity counts reader pairs that a downstream FU binder could merge
// onto one functional unit port: same class, same port, different steps.
func affinity(a, b []readerKey) float64 {
	n := 0.0
	for _, x := range a {
		for _, y := range b {
			if x.mult == y.mult && x.left == y.left && x.step != y.step {
				n++
			}
		}
	}
	return n
}

// BindOpt allocates and binds registers with configurable weights.
func BindOpt(g *cdfg.Graph, s *cdfg.Schedule, opt Options) (*Binding, error) {
	lt := cdfg.Lifetimes(g, s)
	b := &Binding{
		Reg:       make([]int, len(g.Nodes)),
		Lifetimes: lt,
	}
	for i := range b.Reg {
		b.Reg[i] = -1
	}

	// A value occupies a register at boundaries [Birth, Death) (the
	// boundary after step t is "t"). The allocation lower bound is the
	// max occupancy over boundaries — the paper's "control step with the
	// largest number of variables with overlapping lifetimes".
	var vars []int
	for _, n := range g.Nodes {
		if lt[n.ID].Death > lt[n.ID].Birth {
			vars = append(vars, n.ID)
		}
	}
	maxLive := 0
	for t := 0; t <= s.Len; t++ {
		live := 0
		for _, v := range vars {
			if lt[v].Birth <= t && t < lt[v].Death {
				live++
			}
		}
		if live > maxLive {
			maxLive = live
		}
	}
	b.NumRegs = maxLive

	// freeFrom[r]: the boundary from which register r is available.
	freeFrom := make([]int, maxLive)
	for i := range freeFrom {
		freeFrom[i] = -1
	}
	// regReaders[r] accumulates the consumer profile of the values bound
	// to r so far, for the interconnect-affinity weighting.
	consumers := g.Consumers()
	regReaders := make([][]readerKey, maxLive)

	// Clusters of mutually unsharable variables: the variables born at
	// the same step overlap pairwise, processed in ascending birth order.
	sort.Slice(vars, func(i, j int) bool {
		if lt[vars[i]].Birth != lt[vars[j]].Birth {
			return lt[vars[i]].Birth < lt[vars[j]].Birth
		}
		return vars[i] < vars[j]
	})
	for start := 0; start < len(vars); {
		birth := lt[vars[start]].Birth
		end := start
		for end < len(vars) && lt[vars[end]].Birth == birth {
			end++
		}
		cluster := vars[start:end]
		start = end

		// Candidate registers: free at this boundary.
		var free []int
		for r := 0; r < maxLive; r++ {
			if freeFrom[r] <= birth {
				free = append(free, r)
			}
		}
		// Weighted bipartite graph. The base weight makes cardinality
		// dominate; the affinity term implements the Huang et al. [11]
		// interconnect objective (co-locate values whose readers an FU
		// binder can merge); idle-time packing is a small tie-break.
		varReaders := make([][]readerKey, len(cluster))
		for ui, v := range cluster {
			varReaders[ui] = readers(g, s, opt.Swap, consumers, v)
		}
		var edges []matching.Edge
		for ui := range cluster {
			for vi, r := range free {
				idle := birth - freeFrom[r]
				w := 1000 + 0.01/float64(1+idle)
				if opt.Swap != nil {
					w += affinity(varReaders[ui], regReaders[r])
				}
				edges = append(edges, matching.Edge{U: ui, V: vi, W: w})
			}
		}
		match, _ := matching.MaxWeight(len(cluster), len(free), edges)
		for ui, v := range cluster {
			if match[ui] < 0 {
				return nil, fmt.Errorf("regbind: variable %d found no free register (allocation bound %d too small)", v, maxLive)
			}
			r := free[match[ui]]
			b.Reg[v] = r
			freeFrom[r] = lt[v].Death
			regReaders[r] = append(regReaders[r], varReaders[ui]...)
		}
	}
	return b, nil
}

// Validate checks that no two overlapping values share a register and
// that every stored value has one.
func (b *Binding) Validate(g *cdfg.Graph, s *cdfg.Schedule) error {
	lt := cdfg.Lifetimes(g, s)
	byReg := make(map[int][]int)
	for _, n := range g.Nodes {
		if lt[n.ID].Death > lt[n.ID].Birth {
			r := b.Reg[n.ID]
			if r < 0 || r >= b.NumRegs {
				return fmt.Errorf("regbind: value %d stored but unbound", n.ID)
			}
			byReg[r] = append(byReg[r], n.ID)
		} else if b.Reg[n.ID] != -1 {
			return fmt.Errorf("regbind: transient value %d bound to a register", n.ID)
		}
	}
	for r, vs := range byReg {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if lt[vs[i]].Overlaps(lt[vs[j]]) {
					return fmt.Errorf("regbind: register %d holds overlapping values %d and %d", r, vs[i], vs[j])
				}
			}
		}
	}
	return nil
}

// ValuesPerRegister returns, per register, the values bound to it in
// birth order — the steering-mux fanin of that register.
func (b *Binding) ValuesPerRegister(g *cdfg.Graph) [][]int {
	out := make([][]int, b.NumRegs)
	for _, n := range g.Nodes {
		if r := b.Reg[n.ID]; r >= 0 {
			out[r] = append(out[r], n.ID)
		}
	}
	for _, vs := range out {
		sort.Slice(vs, func(i, j int) bool {
			return b.Lifetimes[vs[i]].Birth < b.Lifetimes[vs[j]].Birth
		})
	}
	return out
}

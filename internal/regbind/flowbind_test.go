package regbind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
)

func TestBindFlowChain(t *testing.T) {
	g, s := chainGraph(8)
	b, err := BindFlow(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestBindFlowUsesMinimumRegisters(t *testing.T) {
	// The flow cover must not use more registers than the bipartite
	// binder's allocation bound (max overlap).
	g, s := chainGraph(10)
	bf, err := BindFlow(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if bf.NumRegs > bb.NumRegs {
		t.Fatalf("flow binding uses %d registers, bipartite uses %d", bf.NumRegs, bb.NumRegs)
	}
}

func TestBindFlowRandomValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 4+rng.Intn(30))
		s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 2, Mult: 2})
		if err != nil {
			return true
		}
		swap := make([]bool, len(g.Nodes))
		b, err := BindFlow(g, s, Options{Swap: swap})
		if err != nil {
			return false
		}
		return b.Validate(g, s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBindFlowEmptyGraph(t *testing.T) {
	g := cdfg.NewGraph("empty")
	g.AddInput("a")
	s := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 1}
	b, err := BindFlow(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRegs != 0 {
		t.Fatalf("no stored values should mean 0 registers, got %d", b.NumRegs)
	}
}

func TestBindFlowMultiCycle(t *testing.T) {
	g, _ := chainGraph(6)
	lib := cdfg.Library{AddLatency: 2, MultLatency: 2}
	s, err := cdfg.ListScheduleLat(g, cdfg.ResourceConstraint{Add: 1, Mult: 1}, lib)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BindFlow(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

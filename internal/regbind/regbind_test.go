package regbind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
)

// chainGraph: a0 + a1 -> t1; t1 + a2 -> t2; ... sequential adds.
func chainGraph(n int) (*cdfg.Graph, *cdfg.Schedule) {
	g := cdfg.NewGraph("chain")
	prev := g.AddInput("a0")
	ins := []int{prev}
	for i := 1; i <= n; i++ {
		ins = append(ins, g.AddInput(""))
	}
	for i := 1; i <= n; i++ {
		prev = g.AddOp(cdfg.KindAdd, "", prev, ins[i])
	}
	g.MarkOutput(prev)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if err != nil {
		panic(err)
	}
	return g, s
}

func TestBindChain(t *testing.T) {
	g, s := chainGraph(5)
	b, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	if b.NumRegs < 1 {
		t.Fatal("chain needs registers")
	}
}

func TestBindReusesRegisters(t *testing.T) {
	// The chain's intermediate values have disjoint lifetimes except for
	// the pipelining overlap — far fewer registers than values.
	g, s := chainGraph(10)
	b, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	stored := 0
	for _, r := range b.Reg {
		if r >= 0 {
			stored++
		}
	}
	if b.NumRegs >= stored {
		t.Fatalf("no register sharing: %d regs for %d values", b.NumRegs, stored)
	}
}

func TestBindMatchesMaxOverlapLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 4+rng.Intn(30))
		s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 2, Mult: 2})
		if err != nil {
			return true // skip graphs without both classes
		}
		b, err := Bind(g, s)
		if err != nil {
			return false
		}
		if b.Validate(g, s) != nil {
			return false
		}
		// Optimality for interval graphs: NumRegs equals max overlap,
		// and the binding uses exactly NumRegs registers.
		used := make(map[int]bool)
		for _, r := range b.Reg {
			if r >= 0 {
				used[r] = true
			}
		}
		return len(used) <= b.NumRegs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func randomGraph(rng *rand.Rand, ops int) *cdfg.Graph {
	g := cdfg.NewGraph("rand")
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		g.AddInput("")
	}
	for i := 0; i < ops; i++ {
		kind := cdfg.KindAdd
		if rng.Intn(2) == 0 {
			kind = cdfg.KindMult
		}
		a := rng.Intn(len(g.Nodes))
		b := rng.Intn(len(g.Nodes))
		g.AddOp(kind, "", a, b)
	}
	consumers := g.Consumers()
	for _, nd := range g.Nodes {
		if nd.Kind.IsOp() && len(consumers[nd.ID]) == 0 {
			g.MarkOutput(nd.ID)
		}
	}
	return g
}

func TestBindDeterministic(t *testing.T) {
	g, s := chainGraph(8)
	b1, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.Reg {
		if b1.Reg[i] != b2.Reg[i] {
			t.Fatal("binding not deterministic")
		}
	}
}

func TestValuesPerRegister(t *testing.T) {
	g, s := chainGraph(6)
	b, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	vpr := b.ValuesPerRegister(g)
	if len(vpr) != b.NumRegs {
		t.Fatalf("vpr size %d != NumRegs %d", len(vpr), b.NumRegs)
	}
	count := 0
	for _, vs := range vpr {
		// Values in one register sorted by birth and non-overlapping.
		for i := 1; i < len(vs); i++ {
			if b.Lifetimes[vs[i-1]].Birth > b.Lifetimes[vs[i]].Birth {
				t.Fatal("values not sorted by birth")
			}
			if b.Lifetimes[vs[i-1]].Overlaps(b.Lifetimes[vs[i]]) {
				t.Fatal("register holds overlapping values")
			}
		}
		count += len(vs)
	}
	stored := 0
	for _, r := range b.Reg {
		if r >= 0 {
			stored++
		}
	}
	if count != stored {
		t.Fatalf("vpr covers %d values, want %d", count, stored)
	}
}

func TestValidateDetectsConflicts(t *testing.T) {
	g, s := chainGraph(4)
	b, err := Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: force two overlapping inputs into one register. Inputs
	// all overlap (born at 0, long-lived).
	first := -1
	for _, id := range g.Inputs {
		if b.Reg[id] >= 0 {
			if first == -1 {
				first = id
			} else {
				b.Reg[id] = b.Reg[first]
				break
			}
		}
	}
	if err := b.Validate(g, s); err == nil {
		t.Fatal("corrupted binding should fail validation")
	}
}

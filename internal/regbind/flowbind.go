package regbind

import (
	"fmt"
	"sort"

	"repro/internal/cdfg"
	"repro/internal/matching"
)

// BindFlow allocates and binds registers with a min-cost max-flow path
// cover over the value-compatibility DAG — the network-flow register
// binding of Chen and Cong [2] that "binds all the resources
// simultaneously" (the enhancement the paper says LOPASS adopted). Each
// flow path chains values with non-overlapping lifetimes into one
// register; chain costs prefer reader-affinity (values whose consumers a
// downstream FU binder can merge), mirroring BindOpt's weights but
// optimized globally instead of cluster by cluster.
func BindFlow(g *cdfg.Graph, s *cdfg.Schedule, opt Options) (*Binding, error) {
	lt := cdfg.Lifetimes(g, s)
	b := &Binding{
		Reg:       make([]int, len(g.Nodes)),
		Lifetimes: lt,
	}
	for i := range b.Reg {
		b.Reg[i] = -1
	}

	var vars []int
	for _, n := range g.Nodes {
		if lt[n.ID].Death > lt[n.ID].Birth {
			vars = append(vars, n.ID)
		}
	}
	if len(vars) == 0 {
		return b, nil
	}
	sort.Slice(vars, func(i, j int) bool {
		if lt[vars[i]].Birth != lt[vars[j]].Birth {
			return lt[vars[i]].Birth < lt[vars[j]].Birth
		}
		return vars[i] < vars[j]
	})
	// Register count = max overlap (as in Bind).
	maxLive := 0
	for t := 0; t <= s.Len; t++ {
		live := 0
		for _, v := range vars {
			if lt[v].Birth <= t && t < lt[v].Death {
				live++
			}
		}
		if live > maxLive {
			maxLive = live
		}
	}

	consumers := g.Consumers()
	readersOf := make(map[int][]readerKey, len(vars))
	for _, v := range vars {
		readersOf[v] = readers(g, s, opt.Swap, consumers, v)
	}

	// Path cover: super source -> src (cap = registers) -> varIn_i ->
	// varOut_i (reward for coverage) -> sink; chain edges varOut_i ->
	// varIn_j when j is born at or after i's death.
	n := len(vars)
	superSrc, src := 0, 1
	varIn := func(i int) int { return 2 + 2*i }
	varOut := func(i int) int { return 3 + 2*i }
	sink := 2 + 2*n
	const cover = -1e6

	f := matching.NewFlow(sink + 1)
	f.AddEdge(superSrc, src, maxLive, 0)
	startEdges := make([]int, n)
	chainEdges := make(map[[2]int]int)
	for i, v := range vars {
		startEdges[i] = f.AddEdge(src, varIn(i), 1, 0)
		f.AddEdge(varIn(i), varOut(i), 1, cover)
		f.AddEdge(varOut(i), sink, 1, 0)
		for j, w := range vars {
			if lt[v].Death <= lt[w].Birth && i != j {
				// Affinity discounts chains whose readers merge well.
				cost := 8 - affinity(readersOf[v], readersOf[w])
				if cost < 0 {
					cost = 0
				}
				chainEdges[[2]int{i, j}] = f.AddEdge(varOut(i), varIn(j), 1, cost)
			}
		}
	}
	f.MinCostMaxFlow(superSrc, sink)

	next := make([]int, n)
	for i := range next {
		next[i] = -1
	}
	for key, h := range chainEdges {
		if f.EdgeFlow(h) > 0 {
			next[key[0]] = key[1]
		}
	}
	reg := 0
	covered := 0
	for i := range vars {
		if f.EdgeFlow(startEdges[i]) == 0 {
			continue
		}
		for j := i; j >= 0; j = next[j] {
			b.Reg[vars[j]] = reg
			covered++
		}
		reg++
	}
	if covered != len(vars) {
		return nil, fmt.Errorf("regbind: flow cover bound %d of %d values", covered, len(vars))
	}
	b.NumRegs = reg
	return b, nil
}

// Package binding defines the functional-unit binding representation
// shared by HLPower (internal/core) and the LOPASS baseline
// (internal/lopass), together with the multiplexer-size bookkeeping that
// drives both algorithms' cost functions and the paper's Table 3/4
// metrics: per-port mux sizes, muxDiff, largest mux, and mux length.
package binding

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
)

// FU is one allocated functional unit and the operations bound to it.
type FU struct {
	ID   int
	Kind netgen.FUKind
	Ops  []int
}

// Result is a complete functional-unit binding.
type Result struct {
	FUs []*FU
	// FUOf[node] is the FU index executing the operation, -1 for inputs.
	FUOf []int
	// SwapPorts[node] reports that the operation's second argument feeds
	// the left FU port (port assignment is fixed at register-binding
	// time, "randomly bound" per the paper §5.1; only commutative
	// operations may swap).
	SwapPorts []bool
}

// NewResult allocates an empty binding for the graph.
func NewResult(g *cdfg.Graph) *Result {
	r := &Result{
		FUOf:      make([]int, len(g.Nodes)),
		SwapPorts: make([]bool, len(g.Nodes)),
	}
	for i := range r.FUOf {
		r.FUOf[i] = -1
	}
	return r
}

// RandomPortAssignment randomizes the argument-to-port mapping of every
// commutative operation with the given seed (subtraction ports stay
// fixed). Both binders must share one assignment, like the shared
// register binding.
func RandomPortAssignment(g *cdfg.Graph, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	swap := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == cdfg.KindAdd || n.Kind == cdfg.KindMult {
			swap[n.ID] = rng.Intn(2) == 1
		}
	}
	return swap
}

// PortArgs returns the node IDs feeding the left and right FU ports of
// an operation under the result's port assignment.
func (r *Result) PortArgs(g *cdfg.Graph, op int) (left, right int) {
	n := g.Nodes[op]
	if r.SwapPorts[op] {
		return n.Args[1], n.Args[0]
	}
	return n.Args[0], n.Args[1]
}

// PortSources returns the distinct register sources feeding each port of
// an FU, sorted ascending. This is computable before datapath
// elaboration because registers are already bound (paper §5.2.2 step 1).
func PortSources(g *cdfg.Graph, rb *regbind.Binding, r *Result, fu *FU) (left, right []int) {
	ls := map[int]bool{}
	rs := map[int]bool{}
	for _, op := range fu.Ops {
		l, rr := r.PortArgs(g, op)
		ls[rb.Reg[l]] = true
		rs[rb.Reg[rr]] = true
	}
	for k := range ls {
		left = append(left, k)
	}
	for k := range rs {
		right = append(right, k)
	}
	sort.Ints(left)
	sort.Ints(right)
	return left, right
}

// MuxSizes returns the input multiplexer sizes (kL, kR) of an FU.
func MuxSizes(g *cdfg.Graph, rb *regbind.Binding, r *Result, fu *FU) (int, int) {
	l, rr := PortSources(g, rb, r, fu)
	return len(l), len(rr)
}

// MuxDiff returns |kL - kR| for an FU (paper Eq. 4).
func MuxDiff(g *cdfg.Graph, rb *regbind.Binding, r *Result, fu *FU) int {
	kl, kr := MuxSizes(g, rb, r, fu)
	d := kl - kr
	if d < 0 {
		d = -d
	}
	return d
}

// MergedMuxSizes returns the port mux sizes that would result from
// binding two operation sets to the same FU — the quantity HLPower
// evaluates per bipartite edge (paper §5.2.2 step 1).
//
// This is the allocating, recompute-from-ops form: each call rebuilds
// both FUs' source sets from scratch. The binding engine, which asks
// this question O(|U|·|V|) times per merge round, maintains PortSets
// per node instead and answers through MergedMuxSizesSets.
func MergedMuxSizes(g *cdfg.Graph, rb *regbind.Binding, r *Result, a, b *FU) (int, int) {
	ls := map[int]bool{}
	rs := map[int]bool{}
	for _, fu := range []*FU{a, b} {
		for _, op := range fu.Ops {
			l, rr := r.PortArgs(g, op)
			ls[rb.Reg[l]] = true
			rs[rb.Reg[rr]] = true
		}
	}
	return len(ls), len(rs)
}

// PortSets is the incremental form of the per-port source bookkeeping
// behind PortSources/MergedMuxSizes: bitvec-backed sets of the distinct
// register sources feeding an FU's left and right ports. Register IDs
// are dense, so bit reg+1 represents register reg (bit 0 stands for the
// never-stored pseudo-source Reg == -1), and distinct-source counts
// agree exactly with the map-based accessors. A binder maintains one
// PortSets per working FU node, merges them in O(numRegs/64) words when
// nodes combine, and sizes a prospective merge without touching the
// operation lists at all.
type PortSets struct {
	L, R bitvec.Set
}

// NewPortSets builds the port source sets of an operation set under the
// result's port assignment.
func NewPortSets(g *cdfg.Graph, rb *regbind.Binding, r *Result, ops []int) PortSets {
	ps := PortSets{L: bitvec.NewSet(rb.NumRegs + 1), R: bitvec.NewSet(rb.NumRegs + 1)}
	for _, op := range ops {
		l, rr := r.PortArgs(g, op)
		ps.L.Add(rb.Reg[l] + 1)
		ps.R.Add(rb.Reg[rr] + 1)
	}
	return ps
}

// Merge folds o's sources into ps — the port-set effect of the FU
// absorbing o's operations.
func (ps PortSets) Merge(o PortSets) {
	ps.L.Union(o.L)
	ps.R.Union(o.R)
}

// Sizes returns the port mux sizes (kL, kR) of the set.
func (ps PortSets) Sizes() (int, int) {
	return ps.L.Count(), ps.R.Count()
}

// MergedMuxSizesSets returns the port mux sizes of merging two FUs from
// their maintained port sets — the allocation-free counterpart of
// MergedMuxSizes, and the call shape the binding engine's edge scorer
// uses (paper §5.2.2 step 1).
func MergedMuxSizesSets(a, b PortSets) (int, int) {
	return bitvec.UnionCount(a.L, b.L), bitvec.UnionCount(a.R, b.R)
}

// Compatible reports whether two FU nodes may be merged: same operation
// class and no two contained operations with overlapping occupation
// intervals (the paper's two compatibility criteria, §5.2.1, extended
// to multi-cycle resources: a non-pipelined unit is busy from an
// operation's start step through its completion step).
func Compatible(g *cdfg.Graph, s *cdfg.Schedule, a, b *FU) bool {
	if a.Kind != b.Kind {
		return false
	}
	steps := make(map[int]bool, len(a.Ops))
	for _, op := range a.Ops {
		for t := s.Step[op]; t <= s.BusyUntil(g, op); t++ {
			steps[t] = true
		}
	}
	for _, op := range b.Ops {
		for t := s.Step[op]; t <= s.BusyUntil(g, op); t++ {
			if steps[t] {
				return false
			}
		}
	}
	return true
}

// Counts returns the number of allocated FUs per class.
func (r *Result) Counts() map[netgen.FUKind]int {
	c := make(map[netgen.FUKind]int)
	for _, fu := range r.FUs {
		c[fu.Kind]++
	}
	return c
}

// Validate checks that every operation is bound exactly once to an FU of
// its class, that no FU executes two operations in one control step, and
// (if rc is non-zero) that the allocation meets the resource constraint.
func (r *Result) Validate(g *cdfg.Graph, s *cdfg.Schedule, rc cdfg.ResourceConstraint) error {
	seen := make(map[int]bool)
	for fi, fu := range r.FUs {
		if fu.ID != fi {
			return fmt.Errorf("binding: FU %d has inconsistent ID %d", fi, fu.ID)
		}
		steps := make(map[int]int)
		for _, op := range fu.Ops {
			n := g.Nodes[op]
			if !n.Kind.IsOp() {
				return fmt.Errorf("binding: non-operation %d bound to FU %d", op, fi)
			}
			if n.Kind.FUClass() != fu.Kind {
				return fmt.Errorf("binding: op %d (%s) on %s FU %d", op, n.Kind, fu.Kind, fi)
			}
			if seen[op] {
				return fmt.Errorf("binding: op %d bound twice", op)
			}
			seen[op] = true
			if r.FUOf[op] != fi {
				return fmt.Errorf("binding: FUOf[%d] = %d, want %d", op, r.FUOf[op], fi)
			}
			for t := s.Step[op]; t <= s.BusyUntil(g, op); t++ {
				if prev, clash := steps[t]; clash {
					return fmt.Errorf("binding: FU %d runs ops %d and %d in step %d", fi, prev, op, t)
				}
				steps[t] = op
			}
		}
	}
	for _, id := range g.Ops() {
		if !seen[id] {
			return fmt.Errorf("binding: op %d unbound", id)
		}
		if g.Nodes[id].Kind == cdfg.KindSub && r.SwapPorts[id] {
			return fmt.Errorf("binding: non-commutative op %d has swapped ports", id)
		}
	}
	counts := r.Counts()
	if rc.Add > 0 && counts[netgen.FUAdd] > rc.Add {
		return fmt.Errorf("binding: %d adders exceed constraint %d", counts[netgen.FUAdd], rc.Add)
	}
	if rc.Mult > 0 && counts[netgen.FUMult] > rc.Mult {
		return fmt.Errorf("binding: %d multipliers exceed constraint %d", counts[netgen.FUMult], rc.Mult)
	}
	return nil
}

// MuxStats summarizes the FU input multiplexers of a binding — the
// paper's Table 4 metrics plus largest-mux/mux-length restricted to the
// FU muxes (Table 3 additionally counts register steering muxes, which
// the datapath package reports).
type MuxStats struct {
	// Largest is the biggest FU input mux.
	Largest int
	// Length is the summed sizes of all FU input muxes (size-1 "muxes"
	// are direct wires and contribute 0 hardware but still count their
	// single input, matching the paper's "total number of multiplexer
	// inputs" definition).
	Length int
	// DiffMean and DiffVar are the mean and population variance of
	// muxDiff across allocated FUs.
	DiffMean, DiffVar float64
	// NumFUs is the number of allocated functional units.
	NumFUs int
}

// ComputeMuxStats derives mux statistics from a binding.
func ComputeMuxStats(g *cdfg.Graph, rb *regbind.Binding, r *Result) MuxStats {
	st := MuxStats{NumFUs: len(r.FUs)}
	var diffs []float64
	for _, fu := range r.FUs {
		kl, kr := MuxSizes(g, rb, r, fu)
		if kl > st.Largest {
			st.Largest = kl
		}
		if kr > st.Largest {
			st.Largest = kr
		}
		st.Length += kl + kr
		d := kl - kr
		if d < 0 {
			d = -d
		}
		diffs = append(diffs, float64(d))
	}
	if len(diffs) > 0 {
		sum := 0.0
		for _, d := range diffs {
			sum += d
		}
		st.DiffMean = sum / float64(len(diffs))
		varSum := 0.0
		for _, d := range diffs {
			varSum += (d - st.DiffMean) * (d - st.DiffMean)
		}
		st.DiffVar = varSum / float64(len(diffs))
	}
	return st
}

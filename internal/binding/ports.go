package binding

import (
	"repro/internal/cdfg"
	"repro/internal/regbind"
)

// OptimizePorts re-assigns the argument-to-port mapping of commutative
// operations after functional-unit binding, greedily flipping any swap
// that improves its unit's multiplexers — first total size (kL+kR),
// then balance (|kL−kR|). This is the "port assignment for multiplexer
// optimization" step of Chen and Cong [2] that the paper's flow fixes
// randomly before binding (§5.1); applied afterwards it recovers some
// of the interconnect the random assignment wasted. The pass mutates
// res.SwapPorts and returns the number of flips applied.
func OptimizePorts(g *cdfg.Graph, rb *regbind.Binding, res *Result) int {
	flips := 0
	improved := true
	for improved {
		improved = false
		for _, fu := range res.FUs {
			for _, op := range fu.Ops {
				if g.Nodes[op].Kind == cdfg.KindSub {
					continue // non-commutative
				}
				before := portCost(g, rb, res, fu)
				res.SwapPorts[op] = !res.SwapPorts[op]
				after := portCost(g, rb, res, fu)
				if after < before {
					flips++
					improved = true
				} else {
					res.SwapPorts[op] = !res.SwapPorts[op]
				}
			}
		}
	}
	return flips
}

// portCost orders mux configurations: total inputs dominate, balance
// breaks ties.
func portCost(g *cdfg.Graph, rb *regbind.Binding, res *Result, fu *FU) int {
	kl, kr := MuxSizes(g, rb, res, fu)
	d := kl - kr
	if d < 0 {
		d = -d
	}
	return (kl+kr)*64 + d
}

package binding

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
)

func TestOptimizePortsReducesMuxCost(t *testing.T) {
	// Two adds on one FU reading the same pair of registers but with
	// opposite port orientations: 2/2 muxes that a single flip turns
	// into 1/1 direct connections.
	g := cdfg.NewGraph("po")
	a := g.AddInput("a")
	b := g.AddInput("b")
	op1 := g.AddOp(cdfg.KindAdd, "op1", a, b)
	op2 := g.AddOp(cdfg.KindAdd, "op2", op1, b) // keep op1 alive
	op3 := g.AddOp(cdfg.KindAdd, "op3", a, op2)
	g.MarkOutput(op3)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(g)
	fu := &FU{ID: 0, Kind: netgen.FUAdd, Ops: []int{op1, op2, op3}}
	res.FUs = []*FU{fu}
	for _, op := range fu.Ops {
		res.FUOf[op] = 0
	}
	// Deliberately bad orientation for op3: a on the right, op2-left.
	res.SwapPorts[op3] = true

	before := portCost(g, rb, res, fu)
	flips := OptimizePorts(g, rb, res)
	after := portCost(g, rb, res, fu)
	if after > before {
		t.Fatalf("port optimization made things worse: %d -> %d", before, after)
	}
	if flips == 0 && after == before {
		// Acceptable only if the initial orientation was already optimal;
		// force a check that re-running is a fixpoint either way.
		t.Logf("no improving flip found (cost %d)", before)
	}
	if OptimizePorts(g, rb, res) != 0 {
		t.Fatal("second pass must be a fixpoint")
	}
}

func TestOptimizePortsNeverFlipsSub(t *testing.T) {
	g := cdfg.NewGraph("sub")
	a := g.AddInput("a")
	b := g.AddInput("b")
	d := g.AddOp(cdfg.KindSub, "d", a, b)
	e := g.AddOp(cdfg.KindSub, "e", d, a)
	g.MarkOutput(e)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(g)
	fu := &FU{ID: 0, Kind: netgen.FUAdd, Ops: []int{d, e}}
	res.FUs = []*FU{fu}
	res.FUOf[d], res.FUOf[e] = 0, 0
	OptimizePorts(g, rb, res)
	if res.SwapPorts[d] || res.SwapPorts[e] {
		t.Fatal("subtraction ports were flipped")
	}
	if err := res.Validate(g, s, cdfg.ResourceConstraint{}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizePortsEndToEnd(t *testing.T) {
	// On a random-port binding of a real kernel, optimization must never
	// increase total FU mux length and must terminate.
	g := cdfg.NewGraph("e2e")
	var ins []int
	for i := 0; i < 4; i++ {
		ins = append(ins, g.AddInput(""))
	}
	prev := ins[0]
	for i := 0; i < 10; i++ {
		prev = g.AddOp(cdfg.KindAdd, "", prev, ins[(i+1)%4])
	}
	g.MarkOutput(prev)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 2, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(g)
	copy(res.SwapPorts, RandomPortAssignment(g, 3))
	// One FU per step-parity for a simple valid binding.
	fu0 := &FU{ID: 0, Kind: netgen.FUAdd}
	fu1 := &FU{ID: 1, Kind: netgen.FUAdd}
	res.FUs = []*FU{fu0, fu1}
	for _, op := range g.Ops() {
		fu := fu0
		if s.Step[op]%2 == 1 {
			fu = fu1
		}
		fu.Ops = append(fu.Ops, op)
		res.FUOf[op] = fu.ID
	}
	before := ComputeMuxStats(g, rb, res).Length
	OptimizePorts(g, rb, res)
	after := ComputeMuxStats(g, rb, res).Length
	if after > before {
		t.Fatalf("mux length grew: %d -> %d", before, after)
	}
}

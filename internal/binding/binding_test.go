package binding

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
)

// smallCase builds a 4-op graph with a known schedule and register
// binding for mux bookkeeping tests.
func smallCase(t *testing.T) (*cdfg.Graph, *cdfg.Schedule, *regbind.Binding) {
	t.Helper()
	g := cdfg.NewGraph("small")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	op1 := g.AddOp(cdfg.KindAdd, "op1", a, b)
	op2 := g.AddOp(cdfg.KindAdd, "op2", b, c)
	op3 := g.AddOp(cdfg.KindAdd, "op3", op1, op2)
	op4 := g.AddOp(cdfg.KindAdd, "op4", op3, a)
	g.MarkOutput(op4)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 2, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	_ = []int{op1, op2, op3, op4}
	return g, s, rb
}

func TestRandomPortAssignmentRespectsCommutativity(t *testing.T) {
	g := cdfg.NewGraph("ports")
	a := g.AddInput("a")
	b := g.AddInput("b")
	sub := g.AddOp(cdfg.KindSub, "sub", a, b)
	g.MarkOutput(sub)
	for seed := int64(0); seed < 20; seed++ {
		swap := RandomPortAssignment(g, seed)
		if swap[sub] {
			t.Fatal("subtraction ports must never swap")
		}
	}
	// Commutative ops do get swapped for some seed.
	g2 := cdfg.NewGraph("ports2")
	x := g2.AddInput("x")
	y := g2.AddInput("y")
	add := g2.AddOp(cdfg.KindAdd, "add", x, y)
	g2.MarkOutput(add)
	swapped := false
	for seed := int64(0); seed < 20; seed++ {
		if RandomPortAssignment(g2, seed)[add] {
			swapped = true
		}
	}
	if !swapped {
		t.Fatal("no seed ever swapped a commutative op")
	}
}

func TestPortArgs(t *testing.T) {
	g := cdfg.NewGraph("pa")
	a := g.AddInput("a")
	b := g.AddInput("b")
	op := g.AddOp(cdfg.KindAdd, "op", a, b)
	g.MarkOutput(op)
	r := NewResult(g)
	l, rr := r.PortArgs(g, op)
	if l != a || rr != b {
		t.Fatal("unswapped ports wrong")
	}
	r.SwapPorts[op] = true
	l, rr = r.PortArgs(g, op)
	if l != b || rr != a {
		t.Fatal("swapped ports wrong")
	}
}

func TestMuxSizesAndDiff(t *testing.T) {
	g, _, rb := smallCase(t)
	r := NewResult(g)
	ops := g.Ops()
	// Bind all four adds onto one FU (not schedule-legal, but mux
	// arithmetic does not care).
	fu := &FU{ID: 0, Kind: netgen.FUAdd, Ops: ops}
	r.FUs = append(r.FUs, fu)
	for _, op := range ops {
		r.FUOf[op] = 0
	}
	kl, kr := MuxSizes(g, rb, r, fu)
	if kl < 1 || kr < 1 {
		t.Fatalf("mux sizes %d,%d", kl, kr)
	}
	// Left sources: regs of a, b, op1+op2's reg..., just consistency:
	left, right := PortSources(g, rb, r, fu)
	if len(left) != kl || len(right) != kr {
		t.Fatal("PortSources/MuxSizes disagree")
	}
	d := MuxDiff(g, rb, r, fu)
	want := kl - kr
	if want < 0 {
		want = -want
	}
	if d != want {
		t.Fatalf("MuxDiff = %d, want %d", d, want)
	}
}

func TestMergedMuxSizesIsUnion(t *testing.T) {
	g, _, rb := smallCase(t)
	r := NewResult(g)
	ops := g.Ops()
	fa := &FU{Kind: netgen.FUAdd, Ops: ops[:2]}
	fb := &FU{Kind: netgen.FUAdd, Ops: ops[2:]}
	kl, kr := MergedMuxSizes(g, rb, r, fa, fb)
	all := &FU{Kind: netgen.FUAdd, Ops: ops}
	kl2, kr2 := MuxSizes(g, rb, r, all)
	if kl != kl2 || kr != kr2 {
		t.Fatalf("merged sizes (%d,%d) != combined FU sizes (%d,%d)", kl, kr, kl2, kr2)
	}
}

func TestCompatible(t *testing.T) {
	g, s, _ := smallCase(t)
	ops := g.Ops()
	sameStep := []*FU{}
	for _, op := range ops {
		sameStep = append(sameStep, &FU{Kind: netgen.FUAdd, Ops: []int{op}})
	}
	// op1 and op2 share step 1: incompatible.
	if Compatible(g, s, sameStep[0], sameStep[1]) {
		t.Fatal("same-step ops should be incompatible")
	}
	// op1 (step 1) and op3 (step 2): compatible.
	if !Compatible(g, s, sameStep[0], sameStep[2]) {
		t.Fatal("different-step ops should be compatible")
	}
	mult := &FU{Kind: netgen.FUMult, Ops: nil}
	if Compatible(g, s, sameStep[0], mult) {
		t.Fatal("different classes should be incompatible")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	g, s, _ := smallCase(t)
	ops := g.Ops()
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 1}

	// Valid binding: {op1, op3}, {op2, op4}.
	r := NewResult(g)
	r.FUs = []*FU{
		{ID: 0, Kind: netgen.FUAdd, Ops: []int{ops[0], ops[2]}},
		{ID: 1, Kind: netgen.FUAdd, Ops: []int{ops[1], ops[3]}},
	}
	r.FUOf[ops[0]], r.FUOf[ops[2]] = 0, 0
	r.FUOf[ops[1]], r.FUOf[ops[3]] = 1, 1
	if err := r.Validate(g, s, rc); err != nil {
		t.Fatalf("valid binding rejected: %v", err)
	}

	// Same-step clash.
	bad := NewResult(g)
	bad.FUs = []*FU{
		{ID: 0, Kind: netgen.FUAdd, Ops: []int{ops[0], ops[1]}},
		{ID: 1, Kind: netgen.FUAdd, Ops: []int{ops[2], ops[3]}},
	}
	bad.FUOf[ops[0]], bad.FUOf[ops[1]] = 0, 0
	bad.FUOf[ops[2]], bad.FUOf[ops[3]] = 1, 1
	if err := bad.Validate(g, s, rc); err == nil {
		t.Fatal("same-step clash not caught")
	}

	// Unbound op.
	un := NewResult(g)
	un.FUs = []*FU{{ID: 0, Kind: netgen.FUAdd, Ops: []int{ops[0]}}}
	un.FUOf[ops[0]] = 0
	if err := un.Validate(g, s, rc); err == nil {
		t.Fatal("unbound ops not caught")
	}

	// Constraint violation.
	over := NewResult(g)
	for i, op := range ops {
		over.FUs = append(over.FUs, &FU{ID: i, Kind: netgen.FUAdd, Ops: []int{op}})
		over.FUOf[op] = i
	}
	if err := over.Validate(g, s, cdfg.ResourceConstraint{Add: 2, Mult: 1}); err == nil {
		t.Fatal("constraint violation not caught")
	}
}

func TestComputeMuxStats(t *testing.T) {
	g, _, rb := smallCase(t)
	r := NewResult(g)
	ops := g.Ops()
	r.FUs = []*FU{
		{ID: 0, Kind: netgen.FUAdd, Ops: []int{ops[0], ops[2]}},
		{ID: 1, Kind: netgen.FUAdd, Ops: []int{ops[1], ops[3]}},
	}
	for _, op := range []int{ops[0], ops[2]} {
		r.FUOf[op] = 0
	}
	for _, op := range []int{ops[1], ops[3]} {
		r.FUOf[op] = 1
	}
	st := ComputeMuxStats(g, rb, r)
	if st.NumFUs != 2 {
		t.Fatalf("NumFUs = %d", st.NumFUs)
	}
	if st.Largest < 1 || st.Length < 4 {
		t.Fatalf("degenerate mux stats: %+v", st)
	}
	if st.DiffVar < 0 {
		t.Fatalf("negative variance: %+v", st)
	}
	// Length is the sum of all port mux sizes.
	sum := 0
	for _, fu := range r.FUs {
		kl, kr := MuxSizes(g, rb, r, fu)
		sum += kl + kr
	}
	if st.Length != sum {
		t.Fatalf("Length = %d, want %d", st.Length, sum)
	}
}

// Package bitvec implements truth tables stored as bit vectors.
//
// A TruthTable over n variables stores 2^n function values, one bit per
// input minterm. Variable 0 is the fastest-toggling input (bit 0 of the
// minterm index). Truth tables are the workhorse of the logic network,
// the BLIF SOP translator, the cut evaluator, and the probability engine,
// so the operations here are kept allocation-light.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars bounds the supported truth-table width. 2^16 bits = 8 KiB per
// table; nothing in the mapper or the estimator needs more (cuts are
// K-feasible with K <= 6 and library gates are small).
const MaxVars = 16

// varMask holds the canonical projection pattern of variable i within a
// 64-bit word for i < 6: the bit pattern of x_i over minterms 0..63.
var varMask = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// TruthTable is a Boolean function of NumVars variables represented as a
// 2^NumVars-bit vector. The zero value is not usable; construct with New.
type TruthTable struct {
	n     int
	words []uint64
}

// wordCount returns the number of 64-bit words needed for n variables.
func wordCount(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// tailMask returns the mask of valid bits in the (single) word when n < 6.
func tailMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << n)) - 1
}

// New returns the constant-false function of n variables.
func New(n int) *TruthTable {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("bitvec: variable count %d out of range [0,%d]", n, MaxVars))
	}
	return &TruthTable{n: n, words: make([]uint64, wordCount(n))}
}

// Const returns the constant function of n variables with the given value.
func Const(n int, v bool) *TruthTable {
	t := New(n)
	if v {
		for i := range t.words {
			t.words[i] = ^uint64(0)
		}
		t.words[len(t.words)-1] &= tailMask(n)
	}
	return t
}

// Var returns the projection function x_i of n variables.
func Var(n, i int) *TruthTable {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("bitvec: variable %d out of range for %d-var table", i, n))
	}
	t := New(n)
	if i < 6 {
		m := varMask[i] & tailMask(n)
		for w := range t.words {
			t.words[w] = m
		}
		return t
	}
	stride := 1 << (i - 6) // words per half-period
	for w := range t.words {
		if (w/stride)%2 == 1 {
			t.words[w] = ^uint64(0)
		}
	}
	return t
}

// FromFunc builds a truth table by evaluating f on every minterm.
// f receives the input assignment as a bit mask (bit i = variable i).
func FromFunc(n int, f func(assign uint) bool) *TruthTable {
	t := New(n)
	size := 1 << n
	for m := 0; m < size; m++ {
		if f(uint(m)) {
			t.words[m>>6] |= 1 << (uint(m) & 63)
		}
	}
	return t
}

// FromWords reconstructs an n-variable table from backing words as
// exposed by Words(). It validates shape (word count, tail bits) so it
// is safe on untrusted input — deserialized cache artifacts use it and
// treat an error as a cache miss. The words are copied.
func FromWords(n int, words []uint64) (*TruthTable, error) {
	if n < 0 || n > MaxVars {
		return nil, fmt.Errorf("bitvec: variable count %d out of range [0,%d]", n, MaxVars)
	}
	if len(words) != wordCount(n) {
		return nil, fmt.Errorf("bitvec: %d-var table needs %d words, got %d", n, wordCount(n), len(words))
	}
	if n < 6 && words[0]&^tailMask(n) != 0 {
		return nil, fmt.Errorf("bitvec: %d-var table has bits set beyond minterm %d", n, 1<<n)
	}
	t := &TruthTable{n: n, words: make([]uint64, len(words))}
	copy(t.words, words)
	return t, nil
}

// NumVars returns the number of variables.
func (t *TruthTable) NumVars() int { return t.n }

// Size returns the number of minterms, 2^NumVars.
func (t *TruthTable) Size() int { return 1 << t.n }

// Words exposes the backing words (read-only by convention); used by
// hashing and serialization.
func (t *TruthTable) Words() []uint64 { return t.words }

// Get reports the function value on the given minterm.
func (t *TruthTable) Get(minterm uint) bool {
	return t.words[minterm>>6]&(1<<(minterm&63)) != 0
}

// Set assigns the function value on the given minterm.
func (t *TruthTable) Set(minterm uint, v bool) {
	if v {
		t.words[minterm>>6] |= 1 << (minterm & 63)
	} else {
		t.words[minterm>>6] &^= 1 << (minterm & 63)
	}
}

// AppendOnSet appends the function's on-set minterms to dst in
// ascending order and returns the extended slice. Minterms fit uint16
// because MaxVars = 16. The word-level scan (trailing-zeros over the
// backing words) visits on-set bits only, so enumerating a sparse
// on-set costs O(ones), not O(2^n) — the probability engine's
// characterization pass is built on this.
func (t *TruthTable) AppendOnSet(dst []uint16) []uint16 {
	for wi, w := range t.words {
		base := uint(wi) << 6
		for w != 0 {
			dst = append(dst, uint16(base+uint(bits.TrailingZeros64(w))))
			w &= w - 1
		}
	}
	return dst
}

// CompactCover returns the smaller of the function's on-set and
// off-set as a minterm list, with inverted reporting which one it is
// (inverted = the off-set, so the function is the cover's complement).
// The cover has at most 2^(NumVars-1) terms; word-level evaluators use
// it to OR the fewest AND-terms (minterm expansion over fanin words).
func (t *TruthTable) CompactCover() (minterms []uint16, inverted bool) {
	size := t.Size()
	ones := 0
	for m := 0; m < size; m++ {
		if t.Get(uint(m)) {
			ones++
		}
	}
	inverted = ones*2 > size
	want := !inverted
	for m := 0; m < size; m++ {
		if t.Get(uint(m)) == want {
			minterms = append(minterms, uint16(m))
		}
	}
	return minterms, inverted
}

// Clone returns a deep copy of t.
func (t *TruthTable) Clone() *TruthTable {
	c := &TruthTable{n: t.n, words: make([]uint64, len(t.words))}
	copy(c.words, t.words)
	return c
}

func (t *TruthTable) checkSame(o *TruthTable) {
	if t.n != o.n {
		panic(fmt.Sprintf("bitvec: mismatched variable counts %d and %d", t.n, o.n))
	}
}

// And stores a AND b into t (t may alias either operand) and returns t.
func (t *TruthTable) And(a, b *TruthTable) *TruthTable {
	a.checkSame(b)
	t.checkSame(a)
	for i := range t.words {
		t.words[i] = a.words[i] & b.words[i]
	}
	return t
}

// Or stores a OR b into t and returns t.
func (t *TruthTable) Or(a, b *TruthTable) *TruthTable {
	a.checkSame(b)
	t.checkSame(a)
	for i := range t.words {
		t.words[i] = a.words[i] | b.words[i]
	}
	return t
}

// Xor stores a XOR b into t and returns t.
func (t *TruthTable) Xor(a, b *TruthTable) *TruthTable {
	a.checkSame(b)
	t.checkSame(a)
	for i := range t.words {
		t.words[i] = a.words[i] ^ b.words[i]
	}
	return t
}

// Not stores NOT a into t and returns t.
func (t *TruthTable) Not(a *TruthTable) *TruthTable {
	t.checkSame(a)
	for i := range t.words {
		t.words[i] = ^a.words[i]
	}
	t.words[len(t.words)-1] &= tailMask(t.n)
	return t
}

// Equal reports whether t and o compute the same function.
func (t *TruthTable) Equal(o *TruthTable) bool {
	if t.n != o.n {
		return false
	}
	for i := range t.words {
		if t.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IsConst reports whether t is constant; v is the constant value if so.
func (t *TruthTable) IsConst() (v, ok bool) {
	allZero, allOne := true, true
	last := len(t.words) - 1
	for i, w := range t.words {
		want := ^uint64(0)
		if i == last {
			want = tailMask(t.n)
		}
		if w != 0 {
			allZero = false
		}
		if w != want {
			allOne = false
		}
	}
	switch {
	case allZero:
		return false, true
	case allOne:
		return true, true
	}
	return false, false
}

// CountOnes returns the number of minterms on which t is true.
func (t *TruthTable) CountOnes() int {
	c := 0
	for _, w := range t.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Cofactor returns the cofactor of t with respect to variable i set to
// val. The result still has NumVars variables (variable i is redundant).
func (t *TruthTable) Cofactor(i int, val bool) *TruthTable {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("bitvec: cofactor variable %d out of range", i))
	}
	r := New(t.n)
	if i < 6 {
		shift := uint(1) << i
		m := varMask[i]
		for w := range t.words {
			if val {
				hi := t.words[w] & m
				r.words[w] = hi | (hi >> shift)
			} else {
				lo := t.words[w] &^ m
				r.words[w] = lo | (lo << shift)
			}
		}
		r.words[len(r.words)-1] &= tailMask(t.n)
		return r
	}
	stride := 1 << (i - 6)
	for w := range t.words {
		src := w
		if val {
			src = w | stride
		} else {
			src = w &^ stride
		}
		r.words[w] = t.words[src]
	}
	return r
}

// BooleanDiff returns the Boolean difference df/dx_i = f|x_i=1 XOR f|x_i=0.
// The probability of the Boolean difference drives Najm's transition
// density propagation (paper Eq. 1).
func (t *TruthTable) BooleanDiff(i int) *TruthTable {
	c1 := t.Cofactor(i, true)
	c0 := t.Cofactor(i, false)
	return c1.Xor(c1, c0)
}

// DependsOn reports whether t actually depends on variable i.
func (t *TruthTable) DependsOn(i int) bool {
	d := t.BooleanDiff(i)
	v, ok := d.IsConst()
	return !ok || v
}

// SupportSize returns the number of variables t actually depends on.
func (t *TruthTable) SupportSize() int {
	c := 0
	for i := 0; i < t.n; i++ {
		if t.DependsOn(i) {
			c++
		}
	}
	return c
}

// Expand returns an m-variable table computing t applied to the inputs
// selected by mapVars: new variable mapVars[j] supplies old variable j.
// All entries of mapVars must be distinct and < m.
func (t *TruthTable) Expand(m int, mapVars []int) *TruthTable {
	if len(mapVars) != t.n {
		panic("bitvec: Expand mapping length mismatch")
	}
	return FromFunc(m, func(assign uint) bool {
		var old uint
		for j, v := range mapVars {
			if assign&(1<<uint(v)) != 0 {
				old |= 1 << uint(j)
			}
		}
		return t.Get(old)
	})
}

// Eval evaluates the function on an input assignment given as a bit mask.
func (t *TruthTable) Eval(assign uint) bool { return t.Get(assign) }

// String renders the truth table as a hex string, most significant
// minterms first, e.g. "0x8" for 2-input AND.
func (t *TruthTable) String() string {
	var sb strings.Builder
	sb.WriteString("0x")
	digits := (1 << t.n) / 4
	if digits == 0 {
		digits = 1
	}
	for i := digits - 1; i >= 0; i-- {
		nib := (t.words[i/16] >> (uint(i%16) * 4)) & 0xF
		fmt.Fprintf(&sb, "%x", nib)
	}
	return sb.String()
}

// OnesProbability returns the fraction of minterms on which t is true,
// i.e. the signal probability of the output under uniform independent
// inputs with P = 0.5.
func (t *TruthTable) OnesProbability() float64 {
	return float64(t.CountOnes()) / float64(t.Size())
}

package bitvec

import "math/bits"

// Set is a fixed-capacity bit set over a dense integer universe
// [0, 64*len(s)). It backs the binding engine's hot per-node state —
// control-step occupation intervals and register-source sets — where
// union is a handful of word ORs, overlap testing a handful of ANDs,
// and cardinality a popcount, all allocation-free (compare the
// map[int]bool representation it replaced, which allocated per element
// and iterated hash buckets per compatibility check).
//
// The zero value is an empty set of capacity zero; size one for a
// universe with NewSet.
type Set []uint64

// NewSet returns an empty set able to hold elements in [0, n).
func NewSet(n int) Set {
	return make(Set, (n+63)/64)
}

// Add inserts i. i must be below the capacity NewSet was given.
func (s Set) Add(i int) {
	s[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports whether i is in the set.
func (s Set) Has(i int) bool {
	return s[i>>6]&(1<<(uint(i)&63)) != 0
}

// Union folds o into s in place. o must not exceed s's capacity.
func (s Set) Union(o Set) {
	for i, w := range o {
		s[i] |= w
	}
}

// Intersects reports whether the sets share any element.
func (s Set) Intersects(o Set) bool {
	n := len(s)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if s[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the set's cardinality.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionCount returns |a ∪ b| without materializing the union — the
// merged-multiplexer-size query the binding engine issues per bipartite
// edge.
func UnionCount(a, b Set) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w | b[i])
	}
	for _, w := range b[len(a):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// CloneSet returns an independent copy of s.
func (s Set) CloneSet() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

package bitvec

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if s.Count() != 0 {
		t.Fatalf("empty set count = %d", s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if s.Has(2) || s.Has(128) {
		t.Fatal("spurious membership")
	}
	if s.Count() != 6 {
		t.Fatalf("count = %d, want 6", s.Count())
	}
	c := s.CloneSet()
	c.Add(2)
	if s.Has(2) {
		t.Fatal("CloneSet aliases the original")
	}
}

func TestSetUnionIntersects(t *testing.T) {
	a, b := NewSet(200), NewSet(200)
	a.Add(3)
	a.Add(70)
	b.Add(70)
	b.Add(150)
	if !a.Intersects(b) {
		t.Fatal("sets share 70 but Intersects = false")
	}
	b2 := NewSet(200)
	b2.Add(4)
	if a.Intersects(b2) {
		t.Fatal("disjoint sets Intersects = true")
	}
	if got := UnionCount(a, b); got != 3 {
		t.Fatalf("UnionCount = %d, want 3", got)
	}
	a.Union(b)
	if a.Count() != 3 || !a.Has(150) {
		t.Fatal("Union did not fold o into s")
	}
}

// TestSetMatchesMap drives the Set API against a map[int]bool reference
// — the representation it replaced in the binding engine — over random
// operation sequences, including mixed-capacity UnionCount.
func TestSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(300), 1+rng.Intn(300)
		a, b := NewSet(na), NewSet(nb)
		am, bm := map[int]bool{}, map[int]bool{}
		for i := 0; i < 40; i++ {
			x := rng.Intn(na)
			a.Add(x)
			am[x] = true
			y := rng.Intn(nb)
			b.Add(y)
			bm[y] = true
		}
		if a.Count() != len(am) || b.Count() != len(bm) {
			t.Fatalf("trial %d: counts diverge from map reference", trial)
		}
		union := map[int]bool{}
		inter := false
		for x := range am {
			union[x] = true
			if bm[x] {
				inter = true
			}
		}
		for y := range bm {
			union[y] = true
		}
		if got := UnionCount(a, b); got != len(union) {
			t.Fatalf("trial %d: UnionCount = %d, want %d", trial, got, len(union))
		}
		if got := UnionCount(b, a); got != len(union) {
			t.Fatalf("trial %d: UnionCount not symmetric", trial)
		}
		if a.Intersects(b) != inter || b.Intersects(a) != inter {
			t.Fatalf("trial %d: Intersects = %v, want %v", trial, a.Intersects(b), inter)
		}
	}
}

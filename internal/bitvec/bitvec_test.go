package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsFalse(t *testing.T) {
	for n := 0; n <= 8; n++ {
		tt := New(n)
		for m := 0; m < tt.Size(); m++ {
			if tt.Get(uint(m)) {
				t.Fatalf("New(%d): minterm %d unexpectedly true", n, m)
			}
		}
	}
}

func TestConst(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for _, v := range []bool{false, true} {
			tt := Const(n, v)
			got, ok := tt.IsConst()
			if !ok || got != v {
				t.Fatalf("Const(%d,%v): IsConst = %v,%v", n, v, got, ok)
			}
			if v && tt.CountOnes() != tt.Size() {
				t.Fatalf("Const(%d,true): CountOnes=%d want %d", n, tt.CountOnes(), tt.Size())
			}
		}
	}
}

func TestVarProjection(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for i := 0; i < n; i++ {
			tt := Var(n, i)
			for m := 0; m < tt.Size(); m++ {
				want := uint(m)&(1<<uint(i)) != 0
				if tt.Get(uint(m)) != want {
					t.Fatalf("Var(%d,%d) minterm %d: got %v want %v", n, i, m, tt.Get(uint(m)), want)
				}
			}
			if tt.CountOnes()*2 != tt.Size() {
				t.Fatalf("Var(%d,%d): expected balanced function", n, i)
			}
		}
	}
}

func TestSetGet(t *testing.T) {
	tt := New(7)
	rng := rand.New(rand.NewSource(1))
	ref := make(map[uint]bool)
	for i := 0; i < 500; i++ {
		m := uint(rng.Intn(tt.Size()))
		v := rng.Intn(2) == 0
		tt.Set(m, v)
		ref[m] = v
	}
	for m, v := range ref {
		if tt.Get(m) != v {
			t.Fatalf("minterm %d: got %v want %v", m, tt.Get(m), v)
		}
	}
}

func TestBooleanOpsMatchSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 8; n++ {
		a := randomTable(rng, n)
		b := randomTable(rng, n)
		and := New(n).And(a, b)
		or := New(n).Or(a, b)
		xor := New(n).Xor(a, b)
		not := New(n).Not(a)
		for m := 0; m < 1<<n; m++ {
			mm := uint(m)
			if and.Get(mm) != (a.Get(mm) && b.Get(mm)) {
				t.Fatalf("n=%d AND wrong at %d", n, m)
			}
			if or.Get(mm) != (a.Get(mm) || b.Get(mm)) {
				t.Fatalf("n=%d OR wrong at %d", n, m)
			}
			if xor.Get(mm) != (a.Get(mm) != b.Get(mm)) {
				t.Fatalf("n=%d XOR wrong at %d", n, m)
			}
			if not.Get(mm) == a.Get(mm) {
				t.Fatalf("n=%d NOT wrong at %d", n, m)
			}
		}
	}
}

func TestNotIsInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 9)
		rng := rand.New(rand.NewSource(seed))
		a := randomTable(rng, n)
		b := New(n).Not(New(n).Not(a))
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 9)
		rng := rand.New(rand.NewSource(seed))
		a := randomTable(rng, n)
		b := randomTable(rng, n)
		// NOT(a AND b) == NOT a OR NOT b
		lhs := New(n).Not(New(n).And(a, b))
		rhs := New(n).Or(New(n).Not(a), New(n).Not(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCofactorSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 9; n++ {
		a := randomTable(rng, n)
		for i := 0; i < n; i++ {
			c1 := a.Cofactor(i, true)
			c0 := a.Cofactor(i, false)
			for m := 0; m < 1<<n; m++ {
				m1 := uint(m) | 1<<uint(i)
				m0 := uint(m) &^ (1 << uint(i))
				if c1.Get(uint(m)) != a.Get(m1) {
					t.Fatalf("n=%d var=%d positive cofactor wrong at %d", n, i, m)
				}
				if c0.Get(uint(m)) != a.Get(m0) {
					t.Fatalf("n=%d var=%d negative cofactor wrong at %d", n, i, m)
				}
			}
			if c1.DependsOn(i) || c0.DependsOn(i) {
				t.Fatalf("n=%d var=%d: cofactor still depends on the variable", n, i)
			}
		}
	}
}

func TestShannonExpansion(t *testing.T) {
	// f == (x AND f|x=1) OR (NOT x AND f|x=0) for every variable.
	f := func(seed int64, nRaw, iRaw uint8) bool {
		n := 1 + int(nRaw%8)
		i := int(iRaw) % n
		rng := rand.New(rand.NewSource(seed))
		a := randomTable(rng, n)
		x := Var(n, i)
		nx := New(n).Not(x)
		lhs := New(n).Or(New(n).And(x, a.Cofactor(i, true)), New(n).And(nx, a.Cofactor(i, false)))
		return lhs.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanDiff(t *testing.T) {
	// XOR depends on every variable everywhere: diff is constant 1.
	n := 4
	xor := FromFunc(n, func(a uint) bool {
		ones := 0
		for j := 0; j < n; j++ {
			if a&(1<<uint(j)) != 0 {
				ones++
			}
		}
		return ones%2 == 1
	})
	for i := 0; i < n; i++ {
		d := xor.BooleanDiff(i)
		v, ok := d.IsConst()
		if !ok || !v {
			t.Fatalf("d(xor)/dx%d: want const 1, got %s", i, d)
		}
	}
	// AND: diff wrt x0 is the AND of all other variables.
	and := FromFunc(n, func(a uint) bool { return a == (1<<uint(n))-1 })
	d := and.BooleanDiff(0)
	want := FromFunc(n, func(a uint) bool { return a|1 == (1<<uint(n))-1 })
	if !d.Equal(want) {
		t.Fatalf("d(and)/dx0 wrong: got %s want %s", d, want)
	}
}

func TestDependsOnAndSupport(t *testing.T) {
	n := 5
	// f = x1 XOR x3 ignores x0, x2, x4.
	f := FromFunc(n, func(a uint) bool {
		return (a>>1)&1 != (a>>3)&1
	})
	wantDep := []bool{false, true, false, true, false}
	for i, w := range wantDep {
		if f.DependsOn(i) != w {
			t.Fatalf("DependsOn(%d) = %v, want %v", i, f.DependsOn(i), w)
		}
	}
	if got := f.SupportSize(); got != 2 {
		t.Fatalf("SupportSize = %d, want 2", got)
	}
}

func TestExpand(t *testing.T) {
	// 2-input AND expanded into a 4-variable space on vars {3,1}.
	and2 := FromFunc(2, func(a uint) bool { return a == 3 })
	e := and2.Expand(4, []int{3, 1})
	for m := 0; m < 16; m++ {
		want := (m>>3)&1 == 1 && (m>>1)&1 == 1
		if e.Get(uint(m)) != want {
			t.Fatalf("Expand wrong at minterm %d", m)
		}
	}
}

func TestCountOnesAndProbability(t *testing.T) {
	maj := FromFunc(3, func(a uint) bool {
		ones := 0
		for j := 0; j < 3; j++ {
			if a&(1<<uint(j)) != 0 {
				ones++
			}
		}
		return ones >= 2
	})
	if maj.CountOnes() != 4 {
		t.Fatalf("majority CountOnes = %d, want 4", maj.CountOnes())
	}
	if p := maj.OnesProbability(); p != 0.5 {
		t.Fatalf("majority probability = %v, want 0.5", p)
	}
}

func TestString(t *testing.T) {
	and2 := FromFunc(2, func(a uint) bool { return a == 3 })
	if got := and2.String(); got != "0x8" {
		t.Fatalf("AND2 string = %q, want 0x8", got)
	}
	xor2 := FromFunc(2, func(a uint) bool { return a == 1 || a == 2 })
	if got := xor2.String(); got != "0x6" {
		t.Fatalf("XOR2 string = %q, want 0x6", got)
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if New(2).Equal(New(3)) {
		t.Fatal("tables of different widths must not be Equal")
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	mustPanic(t, "New(-1)", func() { New(-1) })
	mustPanic(t, "New(17)", func() { New(MaxVars + 1) })
	mustPanic(t, "Var out of range", func() { Var(3, 3) })
	mustPanic(t, "Cofactor out of range", func() { New(3).Cofactor(5, true) })
	mustPanic(t, "mixed widths", func() { New(3).And(New(3), New(4)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func randomTable(rng *rand.Rand, n int) *TruthTable {
	t := New(n)
	for m := 0; m < 1<<n; m++ {
		if rng.Intn(2) == 0 {
			t.Set(uint(m), true)
		}
	}
	return t
}

func BenchmarkAnd8(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomTable(rng, 8)
	y := randomTable(rng, 8)
	out := New(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out.And(x, y)
	}
}

func BenchmarkBooleanDiff8(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randomTable(rng, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.BooleanDiff(3)
	}
}

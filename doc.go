// Package repro reproduces "FPGA-Targeted High-Level Binding Algorithm
// for Power and Area Reduction with Glitch-Estimation" (Cromar, Lee,
// Chen; DAC 2009). The library lives under internal/ — internal/core is
// HLPower itself, the other packages are the substrates the paper
// depends on (BLIF, logic networks, glitch-aware switching-activity
// estimation, technology mapping, simulation, scheduling, register
// binding, the LOPASS baseline, datapath elaboration, and the
// experiment flow). See README.md for a tour and EXPERIMENTS.md for the
// paper-versus-measured record; the root bench_test.go regenerates each
// table and figure.
package repro
